"""Metamorphic verification transforms (S23, pillar 3).

Each transform rewrites a :class:`~repro.experiments.scenarios.Scenario`
in a way whose effect on the outcome metrics

* ``theta`` — Θ, the paper's profit objective,
* ``gamma_bar`` — Γ̄, mean normalized application value,
* ``mu`` — μ, total dollar cost,
* ``omega_bar`` — Ω̄, mean relative throughput,

is known *a priori*, and a full run of both scenarios checks that the
prediction holds.  The exact transforms use power-of-two factors so the
predicted equalities hold bit-for-bit (scaling a float by ``2^n`` is
exact, and the normalizations ``γ = f/max f`` and ``σ·ξ`` cancel the
factor exactly):

===========  =======================================================
transform    predicted effect (k = scale factor)
===========  =======================================================
value-scale  Θ, Γ̄, μ, Ω̄ all exactly unchanged (γ normalizes k away)
cost-scale   Γ̄, Ω̄, Θ exactly unchanged; μ' = k·μ exactly (σ' = σ/k
             keeps every σ·price comparison bit-identical)
pe-rename    Θ, Γ̄, μ, Ω̄ all exactly unchanged (identifiers are inert)
time-scale   σ' = σ/k; Γ̄, Ω̄, Θ within ``TIME_SCALE_TOL``; μ ≤ μ' ≤
             k·μ·(1 + tol) (longer periods bill more hours, at most
             proportionally)
===========  =======================================================

The time-scale relation is approximate — hour-granular billing and the
fixed one-hour workload wave do not stretch with the period — so it is
checked with documented tolerances and requires a base period of at
least two hours.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.objective import ObjectiveSpec
from ..dataflow.graph import DynamicDataflow
from ..dataflow.pe import Alternate, ProcessingElement
from ..experiments.scenarios import Scenario, run_policy

__all__ = [
    "TRANSFORMS",
    "TIME_SCALE_TOL",
    "MetamorphicCheck",
    "outcome_metrics",
    "scale_values",
    "scale_costs",
    "rename_pes",
    "scale_time",
    "check_transform",
]

#: Tolerance on Γ̄/Ω̄/Θ drift under time scaling (hour-granular billing
#: and the fixed 1-hour wave period do not stretch with the horizon).
TIME_SCALE_TOL = 0.05

#: Slack on the μ ≤ k·μ_base bound under time scaling: σ shrinks with
#: the period while the workload wave and billing hours do not stretch,
#: so the adaptation may legitimately hold a somewhat larger fleet
#: (observed up to ~1.15·k·μ; bound set at 1.25 with margin).
TIME_SCALE_MU_SLACK = 0.25

TRANSFORMS = ("value-scale", "cost-scale", "pe-rename", "time-scale")


def outcome_metrics(result) -> dict[str, float]:
    """(Θ, Γ̄, μ, Ω̄) of a :class:`~repro.engine.manager.RunResult`."""
    outcome = result.outcome
    return {
        "theta": outcome.theta,
        "gamma_bar": outcome.mean_value,
        "mu": outcome.total_cost,
        "omega_bar": outcome.mean_throughput,
    }


# -- scenario rewriting -------------------------------------------------------


def _rebuild_dataflow(
    df: DynamicDataflow,
    rename: Optional[dict[str, str]] = None,
    value_scale: float = 1.0,
) -> DynamicDataflow:
    """Copy a dataflow with renamed PEs and/or scaled alternate values."""
    nm = rename or {n: n for n in df.pe_names}
    pes = [
        ProcessingElement(
            nm[p.name],
            [
                Alternate(
                    name=a.name,
                    value=a.value * value_scale,
                    cost=a.cost,
                    selectivity=a.selectivity,
                )
                for a in p.alternates
            ],
        )
        for p in df.pes
    ]
    edges = [(nm[e.source], nm[e.sink]) for e in df.edges]
    return DynamicDataflow(
        pes,
        edges,
        inputs=[nm[n] for n in df.inputs],
        outputs=[nm[n] for n in df.outputs],
        split={nm[n]: df.split_pattern(n) for n in df.pe_names},
        merge={nm[n]: df.merge_pattern(n) for n in df.pe_names},
    )


@dataclass
class _SigmaScaledScenario(Scenario):
    """A scenario whose objective σ is rescaled by a fixed factor.

    Used by the cost-scale transform: VM prices are multiplied by ``k``
    and σ divided by the same ``k``, keeping every σ·price product the
    heuristics compare bit-identical.  Being a ``Scenario`` *subclass* it
    also bypasses the result cache by design.
    """

    sigma_scale: float = 1.0

    @property
    def spec(self) -> ObjectiveSpec:
        base = Scenario.spec.fget(self)  # type: ignore[attr-defined]
        return dataclasses.replace(base, sigma=base.sigma * self.sigma_scale)


def scale_values(scenario: Scenario, k: float = 4.0) -> Scenario:
    """Multiply every alternate's raw value by ``k`` (γ-scaling).

    Relative values γ = f/max f are invariant, so nothing observable may
    change.  Use a power-of-two ``k`` for exact float cancellation.
    """
    return dataclasses.replace(
        scenario, dataflow=_rebuild_dataflow(scenario.dataflow, value_scale=k)
    )


def scale_costs(scenario: Scenario, k: float = 4.0) -> Scenario:
    """Multiply every VM price by ``k`` and divide σ by ``k`` (σ-scaling).

    Every decision compares value deltas against σ·price products, which
    are unchanged; only the dollar axis stretches: μ' = k·μ exactly.
    """
    catalog = [
        dataclasses.replace(c, hourly_price=c.hourly_price * k)
        for c in scenario.catalog
    ]
    fields = {
        f.name: getattr(scenario, f.name)
        for f in dataclasses.fields(Scenario)
    }
    fields["catalog"] = catalog
    return _SigmaScaledScenario(**fields, sigma_scale=1.0 / k)


def rename_pes(scenario: Scenario) -> tuple[Scenario, dict[str, str]]:
    """Rename every PE with fresh order-preserving identifiers.

    The new names preserve both declaration order (positional) and
    lexicographic order (rank-encoded), so any deterministic iteration —
    insertion-ordered or sorted — visits PEs in the same relative order
    and the run is bit-identical.  Returns (scenario, name map).
    """
    names = scenario.dataflow.pe_names
    rank = {n: i for i, n in enumerate(sorted(names))}
    nm = {n: f"N{rank[n]:03d}" for n in names}
    return (
        dataclasses.replace(
            scenario, dataflow=_rebuild_dataflow(scenario.dataflow, rename=nm)
        ),
        nm,
    )


def scale_time(scenario: Scenario, k: float = 2.0) -> Scenario:
    """Stretch the optimization period by ``k`` (time-scaling).

    σ scales as 1/k (the §8 calibration ties cost expectations to the
    period length); the steady-state metrics should be nearly invariant
    while μ grows at most proportionally.
    """
    return dataclasses.replace(scenario, period=scenario.period * k)


# -- relation checking --------------------------------------------------------


@dataclass
class MetamorphicCheck:
    """Outcome of one transform's relation check."""

    transform: str
    policy: str
    k: float
    base: dict[str, float]
    transformed: dict[str, float]
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.passed else "FAIL"
        line = (
            f"[{status}] {self.transform} (k={self.k:g}, {self.policy}): "
            f"Θ {self.base['theta']:.4f}→{self.transformed['theta']:.4f}  "
            f"μ {self.base['mu']:.2f}→{self.transformed['mu']:.2f}"
        )
        for f in self.failures:
            line += f"\n    {f}"
        return line


def _expect_equal(check: MetamorphicCheck, names: tuple[str, ...]) -> None:
    for name in names:
        b, t = check.base[name], check.transformed[name]
        if b != t:
            check.failures.append(
                f"{name} expected exactly unchanged: {b!r} → {t!r}"
            )


def check_transform(
    scenario: Scenario,
    policy: str,
    transform: str,
    k: Optional[float] = None,
    runner: Callable = run_policy,
) -> MetamorphicCheck:
    """Run ``scenario`` and its transform; check the predicted relation."""
    if transform == "value-scale":
        k = 4.0 if k is None else k
        variant: Scenario = scale_values(scenario, k)
    elif transform == "cost-scale":
        k = 4.0 if k is None else k
        variant = scale_costs(scenario, k)
    elif transform == "pe-rename":
        k = 1.0
        variant, _ = rename_pes(scenario)
    elif transform == "time-scale":
        k = 2.0 if k is None else k
        if scenario.period < 2 * 3600.0:
            raise ValueError(
                "time-scale needs a base period ≥ 2h (hour-granular "
                "billing does not stretch below that)"
            )
        variant = scale_time(scenario, k)
    else:
        raise ValueError(
            f"unknown transform {transform!r}; known: {TRANSFORMS}"
        )

    base = outcome_metrics(runner(scenario, policy))
    transformed = outcome_metrics(runner(variant, policy))
    check = MetamorphicCheck(transform, policy, k, base, transformed)

    if transform in ("value-scale", "pe-rename"):
        _expect_equal(check, ("theta", "gamma_bar", "mu", "omega_bar"))
    elif transform == "cost-scale":
        _expect_equal(check, ("theta", "gamma_bar", "omega_bar"))
        if transformed["mu"] != k * base["mu"]:
            check.failures.append(
                f"mu expected exactly k·mu: {k * base['mu']!r} → "
                f"{transformed['mu']!r}"
            )
    else:  # time-scale
        for name in ("theta", "gamma_bar", "omega_bar"):
            drift = abs(transformed[name] - base[name])
            if drift > TIME_SCALE_TOL:
                check.failures.append(
                    f"{name} drifted {drift:.4f} > {TIME_SCALE_TOL} "
                    f"under time scaling"
                )
        lo = base["mu"] * (1.0 - 1e-9)
        hi = k * base["mu"] * (1.0 + TIME_SCALE_MU_SLACK)
        if not lo <= transformed["mu"] <= hi:
            check.failures.append(
                f"mu {transformed['mu']:.4f} outside [μ, k·μ·(1+slack)] "
                f"= [{lo:.4f}, {hi:.4f}]"
            )
    return check
