"""Verification harness: runtime invariants, differential and metamorphic
testing for the simulation substrate (S23).

Three pillars:

* :mod:`repro.validate.invariants` — opt-in runtime
  :class:`~repro.validate.invariants.InvariantChecker` asserting message
  conservation, queue sanity, metric ranges, billing discipline, and
  fleet agreement at the engine's emit points.  Enabled with
  ``REPRO_VALIDATE=1`` or :func:`~repro.validate.invariants.checking`.
* :mod:`repro.validate.differential` — the per-message engine vs. the
  fluid engine on fixed-seed scenarios, and brute-force optimal Θ vs.
  the deployment heuristics, within documented tolerances.
* :mod:`repro.validate.metamorphic` — scenario transforms (time scaling,
  γ value scaling, σ cost scaling, PE renaming) with predicted effects
  on (Θ, Γ̄, μ, Ω̄) checked after full runs.

:mod:`repro.validate.suite` drives all three behind ``repro verify``.

Only :mod:`.invariants` is imported eagerly: the instrumented engine
modules import this package, so the heavy pillars (which import the
engine back) load lazily via module ``__getattr__``.
"""

from __future__ import annotations

from .invariants import (
    InvariantChecker,
    InvariantViolation,
    checker,
    checking,
    disable,
    enable,
    enabled,
    reset,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "checker",
    "checking",
    "disable",
    "enable",
    "enabled",
    "reset",
    "differential",
    "metamorphic",
    "suite",
]

_LAZY = ("differential", "metamorphic", "suite")


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
