"""repro — dynamic dataflows on elastic clouds.

A from-scratch reproduction of *"Exploiting Application Dynamism and
Cloud Elasticity for Continuous Dataflows"* (Kumbhare, Simmhan, Prasanna;
SC 2013): continuous dataflow graphs whose tasks carry alternate
implementations, deployed on a simulated IaaS cloud with performance
variability, and optimized online by the paper's local and global
deployment/adaptation heuristics.

Quickstart
----------
>>> from repro import Scenario, run_policy
>>> result = run_policy(Scenario(rate=5.0, variability="both",
...                              period=1800.0), "global")
>>> result.outcome.constraint_met
True

Package layout (see DESIGN.md):

``repro.sim``
    Discrete-event simulation kernel (SimPy-style, dependency-free).
``repro.dataflow``
    PEs, alternates, the dataflow DAG, QoS metrics Γ and Ω.
``repro.cloud``
    VM classes/instances, hour billing, variability traces, provider.
``repro.workloads``
    Data-rate profiles and message sources.
``repro.engine``
    Fluid-flow execution engine, monitor, reconciler, run manager.
``repro.core``
    The paper's contribution: objective Θ, bin packing, Alg. 1/Alg. 2
    heuristics, brute-force baseline, policy registry.
``repro.experiments``
    Scenario catalog and per-figure reproduction drivers.
``repro.obs``
    Structured run-trace observability: typed sim-time events, JSONL
    traces, the ``repro trace`` CLI.
``repro.validate``
    Verification harness: runtime invariant checker (``REPRO_VALIDATE=1``),
    differential engine/heuristic checks, metamorphic transforms, and the
    ``repro verify`` CLI.
"""

from . import obs
from .cloud import (
    CloudProvider,
    FailureModel,
    TraceLibrary,
    TraceReplayPerformance,
    VMClass,
    VMInstance,
    aws_2013_catalog,
)
from .core import (
    POLICY_NAMES,
    DynamicPathSet,
    PathSelector,
    PathVariant,
    AdaptationConfig,
    BruteForceDeployment,
    DeploymentConfig,
    DeploymentPlan,
    EvaluationOutcome,
    InitialDeployment,
    ObjectiveSpec,
    Policy,
    RuntimeAdaptation,
    make_policy,
    sigma_from_expectations,
)
from .dataflow import (
    Alternate,
    DynamicDataflow,
    Edge,
    MetricsTimeline,
    ProcessingElement,
    pe,
)
from .engine import RunManager, RunResult
from .experiments import (
    Scenario,
    fig1_dataflow,
    run_policy,
    scaled_dataflow,
    standard_spec,
)
from .workloads import BurstRate, ConstantRate, PeriodicWave, RandomWalkRate

__version__ = "1.0.0"

__all__ = [
    "POLICY_NAMES",
    "AdaptationConfig",
    "Alternate",
    "BruteForceDeployment",
    "BurstRate",
    "CloudProvider",
    "DynamicPathSet",
    "FailureModel",
    "ConstantRate",
    "DeploymentConfig",
    "DeploymentPlan",
    "DynamicDataflow",
    "Edge",
    "EvaluationOutcome",
    "InitialDeployment",
    "MetricsTimeline",
    "ObjectiveSpec",
    "PathSelector",
    "PathVariant",
    "PeriodicWave",
    "Policy",
    "ProcessingElement",
    "RandomWalkRate",
    "RunManager",
    "RunResult",
    "RuntimeAdaptation",
    "Scenario",
    "TraceLibrary",
    "TraceReplayPerformance",
    "VMClass",
    "VMInstance",
    "aws_2013_catalog",
    "fig1_dataflow",
    "make_policy",
    "obs",
    "pe",
    "run_policy",
    "scaled_dataflow",
    "sigma_from_expectations",
    "standard_spec",
    "__version__",
]
