"""Content-addressed result cache for the sweep harness (S22).

Every (scenario, policy) grid cell is a pure function of its
configuration: all randomness derives from the scenario seed, so an
unchanged cell always reproduces the same :class:`~repro.experiments.runner.SweepRow`.
This module memoizes that function on disk.  A cache key is the SHA-256
of the canonical JSON of

* the scenario's structural fingerprint (:meth:`Scenario.fingerprint` —
  every field, with the dataflow and catalog serialized value by value),
* the policy name,
* a *code fingerprint* hashing the source of every module a run
  executes (``repro.{cloud,core,dataflow,engine,sim,workloads}`` plus
  the scenario/runner layer),

so a config edit invalidates only the affected cells and any code change
invalidates everything — without ever serving a stale row.  Entries are
single JSON files under a repo-local ``.repro-cache/`` directory, written
atomically (same-directory temp file + ``os.replace``) and evicted
oldest-first once the directory exceeds a size cap.

Rows survive the JSON round-trip bit-identically: ``json`` serializes
floats via ``repr`` and parses them back to the exact same IEEE-754
double, so a warm run equals a cold run (test-enforced).

Knobs (resolved per call, so tests can redirect freely):

``REPRO_CACHE=0``
    Disable the cache (also :func:`disable` / the CLI ``--no-cache``).
``REPRO_CACHE_DIR``
    Cache directory (default ``.repro-cache`` under the repo root).
``REPRO_CACHE_MAX_MB``
    Size cap in MiB before oldest-first eviction (default 64).

Hits and misses are counted via :mod:`repro.util.perf`
(``cache.hits`` / ``cache.misses``) and emitted as ``cache_hit`` /
``cache_miss`` / ``cache_evicted`` trace events via :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..obs import collector as _trace
from ..util import perf
from ..validate import invariants as _validate
from .runner import SweepRow
from .scenarios import Scenario, run_policy

__all__ = [
    "enable",
    "disable",
    "enabled",
    "cache_dir",
    "max_bytes",
    "code_fingerprint",
    "cache_key",
    "lookup",
    "store",
    "run_cell",
    "stats",
    "clear",
]

#: Entry format version; bumping invalidates every stored row.
SCHEMA = 1

_DEFAULT_DIR_NAME = ".repro-cache"
_DEFAULT_MAX_MB = 64.0

_enabled: bool = os.environ.get("REPRO_CACHE", "") not in ("0", "false")

#: Memoized code fingerprint (source never changes within a process).
_code_fp: Optional[str] = None

#: Subpackages whose source a sweep cell executes.  Harness-only layers
#: (figures, parallel, cli, report, obs, util, this module) are excluded:
#: they shape orchestration, not row values.
_FINGERPRINTED_PACKAGES = (
    "cloud",
    "core",
    "dataflow",
    "engine",
    "sim",
    "workloads",
)
_FINGERPRINTED_MODULES = (
    os.path.join("experiments", "scenarios.py"),
    os.path.join("experiments", "runner.py"),
)


def enable() -> None:
    """Turn the result cache on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the result cache off (stored entries are kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the cache is currently consulted."""
    return _enabled


def cache_dir() -> Path:
    """Resolved cache directory (``REPRO_CACHE_DIR`` or repo-local)."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    # src/repro/experiments/cache.py → repo root is four levels up.
    root = Path(__file__).resolve().parents[3]
    return root / _DEFAULT_DIR_NAME


def max_bytes() -> int:
    """Eviction threshold in bytes (``REPRO_CACHE_MAX_MB``, default 64)."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB", "").strip()
    try:
        mb = float(raw) if raw else _DEFAULT_MAX_MB
    except ValueError:
        mb = _DEFAULT_MAX_MB
    return max(0, int(mb * 1024 * 1024))


# -- keys ---------------------------------------------------------------------


def code_fingerprint() -> str:
    """SHA-256 over the source of every module a sweep cell executes.

    Hashed file-by-file (relative path + bytes) in sorted order, so the
    value is stable across hosts and invalidates on any code change in
    the simulated stack.  Memoized per process.
    """
    global _code_fp
    if _code_fp is not None:
        return _code_fp
    pkg_root = Path(__file__).resolve().parents[1]  # src/repro
    digest = hashlib.sha256()
    paths: list[Path] = []
    for sub in _FINGERPRINTED_PACKAGES:
        paths.extend((pkg_root / sub).rglob("*.py"))
    paths.extend(pkg_root / rel for rel in _FINGERPRINTED_MODULES)
    for path in sorted(paths):
        digest.update(str(path.relative_to(pkg_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _code_fp = digest.hexdigest()
    return _code_fp


def cache_key(scenario: Scenario, policy_name: str) -> str:
    """Content address of one grid cell (hex SHA-256)."""
    payload = {
        "schema": SCHEMA,
        "policy": policy_name,
        "scenario": scenario.fingerprint(),
        "code": code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- storage ------------------------------------------------------------------


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def lookup(key: str) -> Optional[SweepRow]:
    """Load the row stored under ``key``; ``None`` on miss.

    A corrupted or truncated entry (unparsable JSON, wrong schema, bad
    fields) is deleted and treated as a miss — the cell simply reruns
    and overwrites it.
    """
    path = _entry_path(key)
    try:
        entry = json.loads(path.read_text(encoding="utf-8"))
        if entry["schema"] != SCHEMA or entry["key"] != key:
            raise ValueError("schema/key mismatch")
        return SweepRow(**entry["row"])
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store(key: str, policy_name: str, row: SweepRow) -> None:
    """Persist ``row`` under ``key`` atomically, then enforce the cap."""
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(key)
    entry = {
        "schema": SCHEMA,
        "key": key,
        "policy": policy_name,
        "row": asdict(row),
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)
    _evict(directory, keep=path)


def _evict(directory: Path, keep: Path) -> None:
    """Drop oldest entries (mtime, then name) until under the size cap.

    The just-written entry is never evicted, so a pathologically small
    cap still caches the current cell.
    """
    cap = max_bytes()
    entries = []
    total = 0
    for path in directory.glob("*.json"):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append((st.st_mtime_ns, path.name, st.st_size, path))
        total += st.st_size
    if total <= cap:
        return
    for _, _, size, path in sorted(entries):
        if path == keep:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        perf.add("cache.evictions")
        _trace.emit("cache_evicted", t=0.0, key=path.stem)
        total -= size
        if total <= cap:
            break


# -- the integration point ----------------------------------------------------


def run_cell(scenario: Scenario, policy_name: str) -> SweepRow:
    """Execute one (scenario, policy) grid cell through the cache.

    Both the serial sweep loop and the parallel workers funnel through
    here.  Scenario *subclasses* bypass the cache: they can override
    behaviour (providers, profiles) that the structural fingerprint
    cannot see, so caching them would risk stale rows.  Validation-checked
    runs (``REPRO_VALIDATE=1``) bypass it too: a cache hit skips the run
    entirely, so nothing would be checked.
    """
    if not _enabled or type(scenario) is not Scenario or _validate.enabled():
        return SweepRow.from_result(
            scenario, run_policy(scenario, policy_name)
        )
    key = cache_key(scenario, policy_name)
    row = lookup(key)
    if row is not None:
        perf.add("cache.hits")
        _trace.emit("cache_hit", t=0.0, key=key, policy=policy_name)
        return row
    perf.add("cache.misses")
    _trace.emit("cache_miss", t=0.0, key=key, policy=policy_name)
    row = SweepRow.from_result(scenario, run_policy(scenario, policy_name))
    store(key, policy_name, row)
    return row


# -- maintenance --------------------------------------------------------------


def stats() -> dict:
    """Cache state: directory, enablement, entry count, sizes."""
    directory = cache_dir()
    entries = 0
    total = 0
    if directory.is_dir():
        for path in directory.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
    return {
        "dir": str(directory),
        "enabled": _enabled,
        "entries": entries,
        "bytes": total,
        "max_bytes": max_bytes(),
    }


def clear() -> int:
    """Delete every cache entry; returns the number removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
    return removed
