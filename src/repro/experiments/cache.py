"""Content-addressed result cache + warm serving tier (S22, S29).

Every (scenario, policy) grid cell is a pure function of its
configuration: all randomness derives from the scenario seed, so an
unchanged cell always reproduces the same :class:`~repro.experiments.runner.SweepRow`.
This module memoizes that function on disk and — for the always-on
service mode — in memory.  A cache key is the SHA-256 of the canonical
JSON of

* the scenario's structural fingerprint (:meth:`Scenario.fingerprint` —
  every field, with the dataflow and catalog serialized value by value),
* the policy name,
* a *code fingerprint* hashing the source of every module a run
  executes (``repro.{cloud,core,dataflow,engine,sim,workloads}`` plus
  the scenario/runner layer),

so a config edit invalidates only the affected cells and any code change
invalidates everything — without ever serving a stale row.  Entries are
single JSON files under a repo-local ``.repro-cache/`` directory, written
atomically (same-directory unique temp file + ``os.replace``, so racing
writers on one key resolve to one winner with no torn reads) and evicted
oldest-first once the directory exceeds a size cap.

Rows survive the JSON round-trip bit-identically: ``json`` serializes
floats via ``repr`` and parses them back to the exact same IEEE-754
double, so a warm run equals a cold run (test-enforced).

S29 adds three warm-path layers in front of the disk entries:

* a **memoized code fingerprint** with mtime invalidation — the ~60
  source files are hashed once per process and re-stat'ed (not re-read)
  at most every ``REPRO_FP_TTL_S`` seconds; only an actual mtime/size
  change re-hashes.  Cost is surfaced via ``cache.fingerprint_ns``.
* a **serving LRU** of deserialized rows keyed by the content hash
  (:func:`enable_serve_tier`; off by default so batch CLI semantics are
  unchanged) — a warm hit skips JSON parsing entirely.
* a **delta-keyed secondary index**: every stored entry also registers
  one masked key per :data:`DELTA_FIELDS` member (the fingerprint minus
  that field).  A request differing from a cached base in only that
  field is answered without re-simulation when provably sound:

  - *inert-knob rule* (any policy): the changed knob is not consumed by
    the active billing model (e.g. ``billing_discount`` under
    ``on_demand_hourly``), or ``hedge_horizon`` with no failure model —
    the run would be bit-identical, so the base row is served verbatim.
  - *billing-replay rule* (non-adaptive policies, which never observe
    μ): the VM lifecycle ledger stored with the base entry is replayed
    through the new scenario's billing model — only cost and Θ change,
    recomputed bit-identically to a cold run (test-enforced).

Eviction bookkeeping lives in a small ``manifest.json`` (size, last
touch, hit counts, hit latency, masked keys per entry), so stores no
longer stat-scan the whole directory; the manifest is advisory and is
rebuilt from the entry files whenever it is missing or corrupt.

Knobs (resolved per call, so tests can redirect freely):

``REPRO_CACHE=0``
    Disable the cache (also :func:`disable` / the CLI ``--no-cache``).
``REPRO_CACHE_DIR``
    Cache directory (default ``.repro-cache`` under the repo root).
``REPRO_CACHE_MAX_MB``
    Size cap in MiB before oldest-first eviction (default 64).
``REPRO_FP_TTL_S``
    Seconds between code-fingerprint freshness re-stats (default 2).
``REPRO_SERVE_LRU``
    Serving-LRU capacity in entries when the tier is enabled
    (default 512; 0 disables the tier even if enabled).

Hits and misses are counted via :mod:`repro.util.perf` (``cache.hits`` /
``cache.misses``, plus ``cache.lru_hits`` / ``cache.delta_hits`` /
``cache.fingerprint_rehash`` / ``cache.manifest_rebuilds``) and emitted
as ``cache_hit`` / ``cache_miss`` / ``cache_evicted`` trace events via
:mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import re
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..cloud.resources import VMClass, VMInstance
from ..obs import collector as _trace
from ..util import perf
from ..validate import invariants as _validate
from .runner import SweepRow
from .scenarios import Scenario, run_policy

__all__ = [
    "enable",
    "disable",
    "enabled",
    "cache_dir",
    "max_bytes",
    "code_fingerprint",
    "cache_key",
    "masked_key",
    "lookup",
    "store",
    "delta_lookup",
    "serve_lookup",
    "run_cell",
    "enable_serve_tier",
    "disable_serve_tier",
    "serve_tier_enabled",
    "stats",
    "top_entries",
    "clear",
    "DELTA_FIELDS",
    "DELTA_REPLAY_POLICIES",
]

#: Entry format version; bumping invalidates every stored row.
#: 2 = S29: entries carry the scenario fingerprint, the VM lifecycle
#: ledger, and the masked delta keys alongside the row.
SCHEMA = 2

_DEFAULT_DIR_NAME = ".repro-cache"
_DEFAULT_MAX_MB = 64.0
_DEFAULT_FP_TTL_S = 2.0
_DEFAULT_LRU_CAPACITY = 512

_enabled: bool = os.environ.get("REPRO_CACHE", "") not in ("0", "false")

#: Entry files are ``<64-hex-sha256>.json``; everything else in the
#: directory (the manifest, foreign files) is never treated as an entry.
_ENTRY_STEM = re.compile(r"^[0-9a-f]{64}$")

#: Memoized code fingerprint plus the stat snapshot it was hashed from.
_code_fp: Optional[str] = None
_code_fp_stat: Optional[tuple] = None
_code_fp_checked: float = float("-inf")

#: Subpackages whose source a sweep cell executes.  Harness-only layers
#: (figures, parallel, cli, report, obs, util, serve, this module) are
#: excluded: they shape orchestration, not row values.
_FINGERPRINTED_PACKAGES = (
    "cloud",
    "core",
    "dataflow",
    "engine",
    "sim",
    "workloads",
)
_FINGERPRINTED_MODULES = (
    os.path.join("experiments", "scenarios.py"),
    os.path.join("experiments", "runner.py"),
)

# -- delta index configuration ------------------------------------------------

#: Scenario fields a warm request may differ in and still be answered
#: from a cached base entry (when one of the soundness rules applies).
DELTA_FIELDS = (
    "billing_model",
    "billing_commit_hours",
    "billing_discount",
    "billing_upfront_fraction",
    "billing_window_hours",
    "billing_trace_resolution_s",
    "billing_trace_floor",
    "billing_trace_cap",
    "hedge_horizon",
)

#: Billing models that actually consume each parametric knob; under any
#: other model the knob is inert (the constructed model ignores it), so
#: the run is bit-identical and the base row can be served verbatim.
_KNOB_MODELS = {
    "billing_commit_hours": ("reserved",),
    "billing_discount": ("reserved", "sustained_use"),
    "billing_upfront_fraction": ("reserved",),
    "billing_window_hours": ("sustained_use",),
    "billing_trace_resolution_s": ("spot_trace",),
    "billing_trace_floor": ("spot_trace",),
    "billing_trace_cap": ("spot_trace",),
}

#: Policies whose trajectory never observes μ: no runtime adaptation
#: (``adapter is None``) and no billing model in the planner
#: (:func:`~repro.core.policies.make_policy` feeds billing only to
#: ``anneal``).  For these, a billing change alters cost and Θ but not
#: the VM lifecycle, so the ledger can be replayed under the new model.
DELTA_REPLAY_POLICIES = ("static-bruteforce", "static-local", "static-global")

# -- manifest / serving-tier process state ------------------------------------

_MANIFEST_NAME = "manifest.json"
#: Manifest format version (independent of the entry SCHEMA).
MANIFEST_SCHEMA = 1

_tmp_counter = itertools.count()

#: Hit stats accumulated since the last manifest write (write-behind:
#: folding on every warm hit would turn reads into writes).
_pending_hits: dict[str, list] = {}
_pending_lock = threading.Lock()

#: Serializes in-process manifest read-modify-write cycles (the server
#: stores from many worker threads).  Cross-process races stay benign:
#: the manifest is advisory and self-corrects via rebuild/eviction.
_manifest_lock = threading.RLock()

_serve_lru: Optional["_ServeLRU"] = None


def enable() -> None:
    """Turn the result cache on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the result cache off (stored entries are kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the cache is currently consulted."""
    return _enabled


def cache_dir() -> Path:
    """Resolved cache directory (``REPRO_CACHE_DIR`` or repo-local)."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override)
    # src/repro/experiments/cache.py → repo root is four levels up.
    root = Path(__file__).resolve().parents[3]
    return root / _DEFAULT_DIR_NAME


def max_bytes() -> int:
    """Eviction threshold in bytes (``REPRO_CACHE_MAX_MB``, default 64)."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB", "").strip()
    try:
        mb = float(raw) if raw else _DEFAULT_MAX_MB
    except ValueError:
        mb = _DEFAULT_MAX_MB
    return max(0, int(mb * 1024 * 1024))


def _fp_ttl_s() -> float:
    raw = os.environ.get("REPRO_FP_TTL_S", "").strip()
    try:
        return max(0.0, float(raw)) if raw else _DEFAULT_FP_TTL_S
    except ValueError:
        return _DEFAULT_FP_TTL_S


def _lru_capacity() -> int:
    raw = os.environ.get("REPRO_SERVE_LRU", "").strip()
    try:
        return max(0, int(raw)) if raw else _DEFAULT_LRU_CAPACITY
    except ValueError:
        return _DEFAULT_LRU_CAPACITY


# -- serving LRU --------------------------------------------------------------


class _ServeLRU:
    """Tiny thread-safe LRU of deserialized rows, keyed by content hash.

    Rows are frozen dataclasses, so sharing one object across requests
    is safe — there is no per-request state to leak.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._rows: "OrderedDict[str, SweepRow]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def get(self, key: str) -> Optional[SweepRow]:
        with self._lock:
            row = self._rows.get(key)
            if row is not None:
                self._rows.move_to_end(key)
            return row

    def put(self, key: str, row: SweepRow) -> None:
        with self._lock:
            self._rows[key] = row
            self._rows.move_to_end(key)
            while len(self._rows) > self.capacity:
                self._rows.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()


def enable_serve_tier(capacity: Optional[int] = None) -> None:
    """Activate the in-memory serving LRU (``REPRO_SERVE_LRU`` entries).

    Off by default: the batch CLI runs cells once per process, so an LRU
    would only shadow the per-test/per-run cache directories.  The serve
    daemon turns it on at boot.
    """
    global _serve_lru
    cap = _lru_capacity() if capacity is None else int(capacity)
    _serve_lru = _ServeLRU(cap) if cap > 0 else None


def disable_serve_tier() -> None:
    """Drop the serving LRU (the default state)."""
    global _serve_lru
    _serve_lru = None


def serve_tier_enabled() -> bool:
    """Whether the in-memory serving LRU is active."""
    return _serve_lru is not None


# -- keys ---------------------------------------------------------------------


def _source_paths() -> list[Path]:
    pkg_root = Path(__file__).resolve().parents[1]  # src/repro
    paths: list[Path] = []
    for sub in _FINGERPRINTED_PACKAGES:
        paths.extend((pkg_root / sub).rglob("*.py"))
    paths.extend(pkg_root / rel for rel in _FINGERPRINTED_MODULES)
    return sorted(paths)


def code_fingerprint() -> str:
    """SHA-256 over the source of every module a sweep cell executes.

    Hashed file-by-file (relative path + bytes) in sorted order, so the
    value is stable across hosts and invalidates on any code change in
    the simulated stack.  Memoized per process with mtime invalidation:
    within ``REPRO_FP_TTL_S`` of the last check the memo is returned
    outright; past it the sources are re-stat'ed (cheap) and re-hashed
    only if some (mtime_ns, size) actually changed — so a long-running
    server picks up edits without paying ~60 file reads per request.
    """
    global _code_fp, _code_fp_stat, _code_fp_checked
    t0 = time.perf_counter_ns()
    try:
        now = time.monotonic()
        if _code_fp is not None and now - _code_fp_checked < _fp_ttl_s():
            return _code_fp
        pkg_root = Path(__file__).resolve().parents[1]
        paths = _source_paths()
        snapshot = []
        for path in paths:
            try:
                st = path.stat()
            except OSError:
                continue
            snapshot.append(
                (str(path.relative_to(pkg_root)), st.st_mtime_ns, st.st_size)
            )
        snap = tuple(snapshot)
        if _code_fp is not None and snap == _code_fp_stat:
            _code_fp_checked = now
            return _code_fp
        perf.add("cache.fingerprint_rehash")
        digest = hashlib.sha256()
        for path in paths:
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fp = digest.hexdigest()
        _code_fp_stat = snap
        _code_fp_checked = now
        return _code_fp
    finally:
        perf.add("cache.fingerprint_ns", time.perf_counter_ns() - t0)


def cache_key(scenario: Scenario, policy_name: str) -> str:
    """Content address of one grid cell (hex SHA-256)."""
    payload = {
        "schema": SCHEMA,
        "policy": policy_name,
        "scenario": scenario.fingerprint(),
        "code": code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def masked_key(fingerprint: dict, policy_name: str, field: str) -> str:
    """Delta-index address: the cell's key with ``field`` masked out.

    Two scenarios that differ only in ``field`` (same policy, same code)
    produce the same masked key — that collision *is* the index: a
    request probes its own masked keys and finds bases it differs from
    in exactly that field.
    """
    fp = {k: v for k, v in fingerprint.items() if k != field}
    payload = {
        "schema": SCHEMA,
        "policy": policy_name,
        "field": field,
        "scenario": fp,
        "code": code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _masked_hashes(fingerprint: dict, policy_name: str) -> dict[str, str]:
    return {
        field: masked_key(fingerprint, policy_name, field)
        for field in DELTA_FIELDS
    }


# -- manifest -----------------------------------------------------------------


def _manifest_path(directory: Path) -> Path:
    return directory / _MANIFEST_NAME


def _blank_manifest() -> dict:
    return {"schema": MANIFEST_SCHEMA, "entries": {}, "delta": {}}


def _rebuild_manifest(directory: Path) -> dict:
    """Reconstruct the manifest by scanning the entry files.

    Only runs when the manifest is missing or corrupt — the steady-state
    path never stat-scans the directory.  Masked delta keys are
    recovered from the entries themselves (they are stored alongside the
    row), so the delta index survives a rebuild.
    """
    perf.add("cache.manifest_rebuilds")
    manifest = _blank_manifest()
    if not directory.is_dir():
        return manifest
    for path in directory.glob("*.json"):
        if not _ENTRY_STEM.match(path.stem):
            continue
        try:
            st = path.stat()
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(entry, dict) or entry.get("key") != path.stem:
            continue
        manifest["entries"][path.stem] = {
            "size": st.st_size,
            "atime": st.st_mtime,
            "hits": 0,
            "hit_ns": 0,
            "policy": entry.get("policy", ""),
        }
        masked = entry.get("masked")
        if isinstance(masked, dict):
            for mhash in masked.values():
                if isinstance(mhash, str):
                    manifest["delta"][mhash] = path.stem
    return manifest


def _load_manifest(directory: Path) -> dict:
    """Parse the manifest, rebuilding from disk if missing or corrupt."""
    try:
        raw = json.loads(
            _manifest_path(directory).read_text(encoding="utf-8")
        )
        if (
            raw.get("schema") != MANIFEST_SCHEMA
            or not isinstance(raw.get("entries"), dict)
            or not isinstance(raw.get("delta"), dict)
        ):
            raise ValueError("bad manifest shape")
        return raw
    except FileNotFoundError:
        # A directory with no entries has nothing to rebuild; don't
        # count a rebuild for the empty case.
        if directory.is_dir() and any(
            _ENTRY_STEM.match(p.stem) for p in directory.glob("*.json")
        ):
            return _rebuild_manifest(directory)
        return _blank_manifest()
    except (OSError, ValueError, AttributeError):
        return _rebuild_manifest(directory)


def _save_manifest(directory: Path, manifest: dict) -> None:
    path = _manifest_path(directory)
    tmp = path.with_name(
        f".{_MANIFEST_NAME}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    )
    try:
        tmp.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass


def _record_hit(key: str, elapsed_ns: int) -> None:
    with _pending_lock:
        pending = _pending_hits.setdefault(key, [0, 0, 0.0])
        pending[0] += 1
        pending[1] += elapsed_ns
        pending[2] = time.time()


def _fold_pending(manifest: dict) -> bool:
    """Merge write-behind hit stats into the manifest; True if dirty."""
    with _pending_lock:
        if not _pending_hits:
            return False
        drained = dict(_pending_hits)
        _pending_hits.clear()
    dirty = False
    for key, (hits, hit_ns, atime) in drained.items():
        meta = manifest["entries"].get(key)
        if meta is None:
            continue
        meta["hits"] = int(meta.get("hits", 0)) + hits
        meta["hit_ns"] = int(meta.get("hit_ns", 0)) + hit_ns
        meta["atime"] = max(float(meta.get("atime", 0.0)), atime)
        dirty = True
    return dirty


# -- storage ------------------------------------------------------------------


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def _load_entry(key: str) -> Optional[dict]:
    """Parse the full entry JSON under ``key``; ``None`` on any defect.

    A corrupted or truncated entry (unparsable JSON, wrong schema, bad
    fields) is deleted and treated as a miss — the cell simply reruns
    and overwrites it.
    """
    path = _entry_path(key)
    try:
        entry = json.loads(path.read_text(encoding="utf-8"))
        if entry["schema"] != SCHEMA or entry["key"] != key:
            raise ValueError("schema/key mismatch")
        # Validate the row eagerly so defects surface as a miss here,
        # not as a TypeError at the caller.
        SweepRow(**entry["row"])
        return entry
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def lookup(key: str) -> Optional[SweepRow]:
    """Load the row stored under ``key``; ``None`` on miss."""
    t0 = time.perf_counter_ns()
    entry = _load_entry(key)
    if entry is None:
        return None
    _record_hit(key, time.perf_counter_ns() - t0)
    return SweepRow(**entry["row"])


def store(
    key: str,
    policy_name: str,
    row: SweepRow,
    *,
    fingerprint: Optional[dict] = None,
    ledger: Optional[list] = None,
) -> None:
    """Persist ``row`` under ``key`` atomically, then enforce the cap.

    ``fingerprint`` (the scenario's structural fingerprint) and
    ``ledger`` (the run's VM lifecycle, from
    :attr:`~repro.engine.manager.RunResult.vm_ledger`) enable the delta
    index: when both are present the entry registers one masked key per
    :data:`DELTA_FIELDS` member.  Entries stored without them (older
    callers) stay plain full-key entries.
    """
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(key)
    entry = {
        "schema": SCHEMA,
        "key": key,
        "policy": policy_name,
        "row": asdict(row),
    }
    masked: dict[str, str] = {}
    if fingerprint is not None and ledger is not None:
        masked = _masked_hashes(fingerprint, policy_name)
        entry["fingerprint"] = fingerprint
        entry["ledger"] = ledger
        entry["masked"] = masked
    blob = json.dumps(entry, sort_keys=True)
    # Unique temp name per writer: two processes racing on one key must
    # not share a temp file, and `os.replace` makes the last full write
    # win with readers only ever seeing a complete entry.
    tmp = path.with_name(
        f".{key[:16]}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    )
    with _manifest_lock:
        # Load before writing the entry: a fresh directory then parses
        # as a blank manifest instead of triggering a rebuild scan that
        # would see the just-written file.
        manifest = _load_manifest(directory)
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)
        _fold_pending(manifest)
        prior = manifest["entries"].get(key, {})
        manifest["entries"][key] = {
            "size": len(blob.encode("utf-8")),
            "atime": time.time(),
            "hits": int(prior.get("hits", 0)),
            "hit_ns": int(prior.get("hit_ns", 0)),
            "policy": policy_name,
        }
        for mhash in masked.values():
            manifest["delta"][mhash] = key
        _evict(directory, manifest, keep=key)
        _save_manifest(directory, manifest)


def _evict(directory: Path, manifest: dict, keep: str) -> None:
    """Drop oldest entries (atime, then key) until under the size cap.

    Driven entirely by the manifest — no directory scan.  The
    just-written entry is never evicted, so a pathologically small cap
    still caches the current cell.  Stale manifest rows (entry deleted
    behind our back) are dropped and their phantom bytes reclaimed from
    the running total, so the estimate self-corrects.
    """
    cap = max_bytes()
    entries = manifest["entries"]
    total = sum(int(m.get("size", 0)) for m in entries.values())
    if total <= cap:
        return
    order = sorted(
        entries, key=lambda k: (float(entries[k].get("atime", 0.0)), k)
    )
    evicted: list[str] = []
    for key in order:
        if key == keep:
            continue
        size = int(entries[key].get("size", 0))
        try:
            (directory / f"{key}.json").unlink()
            perf.add("cache.evictions")
            _trace.emit("cache_evicted", t=0.0, key=key)
        except OSError:
            pass  # already gone: just reconcile the books
        evicted.append(key)
        total -= size
        if total <= cap:
            break
    for key in evicted:
        entries.pop(key, None)
    if evicted:
        gone = set(evicted)
        manifest["delta"] = {
            m: k for m, k in manifest["delta"].items() if k not in gone
        }


# -- delta serving ------------------------------------------------------------


def _replay_billing(
    scenario: Scenario, row: SweepRow, ledger: list
) -> Optional[SweepRow]:
    """Recompute cost and Θ by replaying ``ledger`` under the scenario's
    billing model.

    Mirrors the cold path exactly: the final cost snapshot is
    ``BillingMeter.cost_at(T)`` — a builtin ``sum`` of per-instance
    costs in registration order at ``T = n_intervals · interval`` — and
    Θ is ``spec.theta(Γ̄, μ)``.  Same floats in, same IEEE-754 ops, same
    bits out (test-enforced).
    """
    try:
        model = scenario.billing()
        spec = scenario.spec
        at = spec.n_intervals * spec.interval
        probes = []
        for name, price, spot, started, stopped in ledger:
            cls = VMClass(
                name=str(name),
                cores=1,
                core_speed=1.0,
                bandwidth_mbps=1.0,
                hourly_price=float(price),
                spot=bool(spot),
            )
            probe = VMInstance(cls, started_at=float(started))
            if stopped is not None:
                probe.stopped_at = float(stopped)
            probes.append(probe)
        cost = sum(model.instance_cost(p, at) for p in probes)
        return dataclasses.replace(
            row,
            cost=cost,
            theta=spec.theta(row.gamma, cost),
            billing_model=scenario.billing_model,
        )
    except Exception:
        return None  # any surprise disqualifies the shortcut, not the run


def _derive_row(
    scenario: Scenario,
    policy_name: str,
    field: str,
    row: SweepRow,
    ledger: list,
) -> Optional[SweepRow]:
    """Apply the soundness rules for a single-field delta; None = unsafe."""
    if field == "hedge_horizon":
        # The hedge horizon only shapes the failure oracle feeding
        # Snapshot.doomed.  With no failure/revocation model the oracle
        # is never built; with one, only adaptive policies consume the
        # snapshot.  Either way the run is bit-identical.
        if scenario.mtbf_hours is None and scenario.spot_mtbf_hours is None:
            return row
        if policy_name in DELTA_REPLAY_POLICIES:
            return row
        return None
    if field in _KNOB_MODELS:
        if scenario.billing_model not in _KNOB_MODELS[field]:
            # Inert knob: the active model (unchanged — only `field`
            # differs) never reads it, so both runs are bit-identical.
            return row
        if policy_name in DELTA_REPLAY_POLICIES:
            return _replay_billing(scenario, row, ledger)
        return None
    if field == "billing_model":
        if policy_name in DELTA_REPLAY_POLICIES:
            return _replay_billing(scenario, row, ledger)
        return None
    return None


def delta_lookup(
    scenario: Scenario, policy_name: str
) -> Optional[tuple[SweepRow, str, str]]:
    """Answer a cell from a base entry differing in one delta field.

    Probes the masked-key index for each :data:`DELTA_FIELDS` member; on
    a hit, applies the soundness rules (inert knob or billing replay).
    Returns ``(row, field, base_key)`` or ``None`` when no base
    qualifies — the caller then falls through to a cold run.
    """
    directory = cache_dir()
    if not directory.is_dir():
        return None
    manifest = _load_manifest(directory)
    index = manifest.get("delta", {})
    if not index:
        return None
    fp = scenario.fingerprint()
    for field in DELTA_FIELDS:
        base_key = index.get(masked_key(fp, policy_name, field))
        if base_key is None:
            continue
        entry = _load_entry(base_key)
        if entry is None:
            continue  # stale index row; the next store prunes it
        base_fp = entry.get("fingerprint")
        ledger = entry.get("ledger")
        if not isinstance(base_fp, dict) or not isinstance(ledger, list):
            continue
        # Belt and braces against hash collisions: the masked
        # fingerprints must literally agree (canonical JSON compare —
        # the stored copy went through JSON, so tuples became lists).
        mine = json.dumps(
            {k: v for k, v in fp.items() if k != field}, sort_keys=True
        )
        theirs = json.dumps(
            {k: v for k, v in base_fp.items() if k != field}, sort_keys=True
        )
        if mine != theirs:
            continue
        derived = _derive_row(
            scenario, policy_name, field, SweepRow(**entry["row"]), ledger
        )
        if derived is not None:
            return derived, field, base_key
    return None


# -- the warm path ------------------------------------------------------------


def _bypass(scenario: Scenario) -> bool:
    """Whether this cell must not touch the cache at all.

    Scenario *subclasses* bypass: they can override behaviour
    (providers, profiles) the structural fingerprint cannot see.
    Validation-checked runs (``REPRO_VALIDATE=1``) bypass too: a cache
    hit skips the run entirely, so nothing would be checked.
    """
    return (
        not _enabled
        or type(scenario) is not Scenario
        or _validate.enabled()
    )


def serve_lookup(
    scenario: Scenario, policy_name: str
) -> Optional[tuple[SweepRow, str]]:
    """Warm-path lookup: serving LRU → disk entry → delta index.

    Returns ``(row, tier)`` with ``tier`` one of ``"lru"``, ``"disk"``,
    ``"delta"``; ``None`` means the cell is cold (or bypassed) and must
    be simulated.  Delta-derived rows are materialized as full entries
    (inheriting the base ledger), so the next identical request is a
    plain warm hit.
    """
    if _bypass(scenario):
        return None
    key = cache_key(scenario, policy_name)
    if _serve_lru is not None:
        row = _serve_lru.get(key)
        if row is not None:
            perf.add("cache.hits")
            perf.add("cache.lru_hits")
            _trace.emit("cache_hit", t=0.0, key=key, policy=policy_name)
            _record_hit(key, 0)
            return row, "lru"
    row = lookup(key)
    if row is not None:
        perf.add("cache.hits")
        _trace.emit("cache_hit", t=0.0, key=key, policy=policy_name)
        if _serve_lru is not None:
            _serve_lru.put(key, row)
        return row, "disk"
    derived = delta_lookup(scenario, policy_name)
    if derived is not None:
        row, field, base_key = derived
        perf.add("cache.hits")
        perf.add("cache.delta_hits")
        _trace.emit(
            "cache_hit",
            t=0.0,
            key=key,
            policy=policy_name,
            delta_field=field,
            base_key=base_key,
        )
        base = _load_entry(base_key)
        store(
            key,
            policy_name,
            row,
            fingerprint=scenario.fingerprint(),
            ledger=base.get("ledger") if base else None,
        )
        if _serve_lru is not None:
            _serve_lru.put(key, row)
        return row, "delta"
    return None


def run_cell(scenario: Scenario, policy_name: str) -> SweepRow:
    """Execute one (scenario, policy) grid cell through the cache.

    The serial sweep loop, the parallel workers, and the serve daemon's
    cold path all funnel through here.  Warm answers come from
    :func:`serve_lookup` (LRU / disk / delta); a cold cell runs the
    simulation and stores the row with its fingerprint and VM ledger.
    """
    if _bypass(scenario):
        return SweepRow.from_result(
            scenario, run_policy(scenario, policy_name)
        )
    warm = serve_lookup(scenario, policy_name)
    if warm is not None:
        return warm[0]
    key = cache_key(scenario, policy_name)
    perf.add("cache.misses")
    _trace.emit("cache_miss", t=0.0, key=key, policy=policy_name)
    result = run_policy(scenario, policy_name)
    row = SweepRow.from_result(scenario, result)
    store(
        key,
        policy_name,
        row,
        fingerprint=scenario.fingerprint(),
        ledger=getattr(result, "vm_ledger", None),
    )
    if _serve_lru is not None:
        _serve_lru.put(key, row)
    return row


# -- maintenance --------------------------------------------------------------


def stats() -> dict:
    """Cache state: directory, enablement, entry count, sizes, hit stats."""
    directory = cache_dir()
    with _manifest_lock:
        manifest = (
            _load_manifest(directory)
            if directory.is_dir()
            else _blank_manifest()
        )
        if _fold_pending(manifest) and directory.is_dir():
            _save_manifest(directory, manifest)
    entries = manifest["entries"]
    hits = sum(int(m.get("hits", 0)) for m in entries.values())
    hit_ns = sum(int(m.get("hit_ns", 0)) for m in entries.values())
    return {
        "dir": str(directory),
        "enabled": _enabled,
        "entries": len(entries),
        "bytes": sum(int(m.get("size", 0)) for m in entries.values()),
        "max_bytes": max_bytes(),
        "hits": hits,
        "mean_hit_ms": (hit_ns / hits / 1e6) if hits else None,
        "delta_keys": len(manifest.get("delta", {})),
        "lru_entries": len(_serve_lru) if _serve_lru is not None else 0,
        "lru_capacity": _serve_lru.capacity if _serve_lru is not None else 0,
    }


def top_entries(n: int = 10) -> list[dict]:
    """The ``n`` hottest entries (by hit count) with manifest metadata.

    Each item: ``key``, ``policy``, ``hits``, ``size`` (bytes), ``age_s``
    (since last touch), ``mean_hit_ms`` (None before the first hit).
    """
    directory = cache_dir()
    if not directory.is_dir():
        return []
    with _manifest_lock:
        manifest = _load_manifest(directory)
        if _fold_pending(manifest):
            _save_manifest(directory, manifest)
    now = time.time()
    rows = []
    for key, meta in manifest["entries"].items():
        hits = int(meta.get("hits", 0))
        hit_ns = int(meta.get("hit_ns", 0))
        rows.append(
            {
                "key": key,
                "policy": meta.get("policy", ""),
                "hits": hits,
                "size": int(meta.get("size", 0)),
                "age_s": max(0.0, now - float(meta.get("atime", now))),
                "mean_hit_ms": (hit_ns / hits / 1e6) if hits else None,
            }
        )
    rows.sort(key=lambda r: (-r["hits"], r["age_s"], r["key"]))
    return rows[: max(0, int(n))]


def clear() -> int:
    """Delete every cache entry; returns the number removed.

    The manifest and the serving LRU are dropped too (not counted)."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("*.json"):
            if not _ENTRY_STEM.match(path.stem):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        try:
            _manifest_path(directory).unlink()
        except OSError:
            pass
    if _serve_lru is not None:
        _serve_lru.clear()
    with _pending_lock:
        _pending_hits.clear()
    return removed
