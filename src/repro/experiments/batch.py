"""Batched sweep execution over the SoA engine (S25).

:func:`sweep` evaluates a (scenario × policy) grid through
:class:`repro.engine.batch.BatchRunner`: all cache-miss cells that share
one clock discipline (interval, horizon, tick) are stacked into a single
structure-of-arrays engine and advanced together, one vectorized tick
for the whole grid.  Rows are bit-identical to the serial
:func:`repro.experiments.runner.sweep` loop (test-enforced), so batching
composes transparently with the result cache:

* cache **hits** are served per cell exactly as the serial loop serves
  them — the batch only computes the misses,
* every finished batch column is written back through
  :func:`repro.experiments.cache.store` as a normal per-cell entry, so
  later serial (or parallel) sweeps hit on batch-produced rows and vice
  versa.

Cells the batch engine cannot take are routed through the ordinary
serial path (:func:`repro.experiments.cache.run_cell`):

* scenarios using any reliability machinery — failure injection, spot
  revocation, checkpointing (the drivers are foreign kernel processes
  and the batch step has no checkpoint sweep),
* every cell when run-invariant validation is on (``REPRO_VALIDATE=1``):
  the validation hooks are a serial-engine feature, so the batch
  defers entirely rather than skip the checks — and since
  ``cache.run_cell`` also bypasses the cache under validation, no
  unvalidated batch row is ever stored,
* incompatible clock grids (mixed interval/period/tick) simply form
  separate batches.

Enable with ``REPRO_BATCH=1`` (or the CLI ``--batch`` flag); the default
is the serial/parallel path.  When batching is on it takes precedence
over process-parallel dispatch (``REPRO_JOBS``): one process stepping
all cells in lockstep replaces the worker pool.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

from ..engine.batch import BatchRunner
from ..engine.manager import RunManager
from ..util import perf
from ..validate import invariants as _validate
from . import cache
from .runner import SweepRow
from .scenarios import MESSAGE_SIZE_MB, Scenario

__all__ = ["enable", "disable", "enabled", "sweep"]

_enabled: bool = os.environ.get("REPRO_BATCH", "") in ("1", "true")


def enable() -> None:
    """Turn batched sweep execution on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn batched sweep execution off (the default)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether sweeps route through the batch engine."""
    return _enabled


def _build_manager(scenario: Scenario, policy_name: str) -> RunManager:
    """Construct the cell's manager exactly as ``run_policy`` does."""
    return RunManager(
        dataflow=scenario.dataflow,
        profiles=scenario.profiles(),
        policy=scenario.policy(policy_name),
        provider=scenario.provider(),
        spec=scenario.spec,
        tick=scenario.tick,
        message_size_mb=MESSAGE_SIZE_MB,
        failures=scenario.failures(),
    )


def sweep(
    scenarios: Iterable[Scenario],
    policies: Sequence[str],
) -> list[SweepRow]:
    """Run every policy on every scenario through the batch engine.

    Returns rows in the serial order (scenario-major, policy-minor),
    each bit-identical to its serial counterpart.
    """
    cells = [
        (scenario, policy) for scenario in scenarios for policy in policies
    ]
    perf.add("sweep.cells", len(cells))
    rows: list[Optional[SweepRow]] = [None] * len(cells)

    if _validate.enabled():
        # Validation hooks only exist on the serial engine; defer the
        # whole grid so every cell is actually checked.  ``run_cell``
        # bypasses the cache under validation, so nothing unvalidated
        # (and nothing unchecked) is stored.
        return [cache.run_cell(s, p) for s, p in cells]

    batchable: list[int] = []
    for i, (scenario, policy) in enumerate(cells):
        # Mirror cache.run_cell's gating: subclasses may override
        # behaviour the structural fingerprint cannot see.
        cacheable = cache.enabled() and type(scenario) is Scenario
        if cacheable:
            key = cache.cache_key(scenario, policy)
            row = cache.lookup(key)
            if row is not None:
                perf.add("cache.hits")
                _trace_cache(True, key, policy)
                rows[i] = row
                continue
        if scenario.uses_reliability:
            # Failure injection, spot revocation and checkpointing are
            # serial-engine features (the drivers are foreign kernel
            # processes and the batch step has no checkpoint sweep).
            rows[i] = cache.run_cell(scenario, policy)
            continue
        batchable.append(i)

    # Group compatible cells: the batch engine requires one shared
    # clock discipline per batch.  Group on the built managers' actual
    # spec (not the scenario fields) so subclass overrides group right.
    managers = {i: _build_manager(*cells[i]) for i in batchable}
    groups: dict[tuple, list[int]] = {}
    for i in batchable:
        m = managers[i]
        compat = (m.spec.interval, m.spec.n_intervals, m.tick)
        groups.setdefault(compat, []).append(i)

    for members in groups.values():
        # Cells sharing a scenario object promise bitwise-identical
        # input rates, so the batch samples each profile once per tick.
        runner = BatchRunner(
            [managers[i] for i in members],
            rate_keys=[id(cells[i][0]) for i in members],
        )
        perf.add("batch.cells", len(members))
        results = runner.run()
        for i, result in zip(members, results):
            scenario, policy = cells[i]
            row = SweepRow.from_result(scenario, result)
            rows[i] = row
            if cache.enabled() and type(scenario) is Scenario:
                perf.add("cache.misses")
                key = cache.cache_key(scenario, policy)
                _trace_cache(False, key, policy)
                cache.store(
                    key,
                    policy,
                    row,
                    fingerprint=scenario.fingerprint(),
                    ledger=result.vm_ledger,
                )
    perf.add("batch.groups", len(groups))

    assert all(r is not None for r in rows)
    return rows  # type: ignore[return-value]


def _trace_cache(hit: bool, key: str, policy: str) -> None:
    from ..obs import collector as _trace

    _trace.emit(
        "cache_hit" if hit else "cache_miss", t=0.0, key=key, policy=policy
    )
