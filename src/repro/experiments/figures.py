"""Per-figure reproduction drivers (paper §8.2, Figs. 2–9).

Each ``figure*`` function regenerates the rows/series behind one figure
of the paper's evaluation and returns a :class:`FigureResult` carrying
the data plus the paper's qualitative expectation for that figure.  The
benchmark harness (``benchmarks/``) runs these and prints the tables; the
EXPERIMENTS.md record compares them against the paper.

Every driver takes ``fast=True`` to run a shortened configuration
(smaller period, fewer rates) suitable for CI; the full configuration
reproduces the paper's setup (6 h periods; 10 h for the cost figures;
2–50 msg/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..cloud.traces import TraceLibrary, trace_statistics
from ..util.tables import format_table
from .runner import SweepRow, average_rows, run_fleet, sweep
from .scenarios import (
    Scenario,
    failure_storm_scenario,
    multi_tenant_scenario,
)

__all__ = [
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure_storm",
    "figure_tenants",
    "figure_pricing",
    "ALL_FIGURES",
]

_FULL_RATES = (2.0, 5.0, 10.0, 20.0, 35.0, 50.0)
_FAST_RATES = (2.0, 5.0, 10.0)
_FULL_PERIOD = 6 * 3600.0
_FAST_PERIOD = 1800.0


@dataclass
class FigureResult:
    """Data reproducing one figure."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list]
    #: The qualitative claim the paper makes about this figure.
    expectation: str
    notes: str = ""
    #: Raw sweep rows when the figure came from engine runs.
    sweep_rows: list[SweepRow] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            format_table(
                self.headers, self.rows, title=f"{self.figure}: {self.title}"
            )
        ]
        parts.append(f"paper expectation: {self.expectation}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figures 2–3: infrastructure variability characterization
# ---------------------------------------------------------------------------


def figure2(
    seed: int = 0,
    n_vms: int = 6,
    days: float = 4.0,
    fast: bool = False,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 2: per-VM CPU performance variability over four days.

    ``jobs`` is accepted for driver-interface uniformity; trace
    statistics are not swept, so it is a no-op here.
    """
    if fast:
        days = 1.0
        n_vms = 3
    from ..cloud.traces import CPUTraceConfig

    library = TraceLibrary(
        seed=seed,
        n_cpu_series=n_vms,
        n_network_series=1,
        cpu=CPUTraceConfig(duration_s=days * 86400.0),
    )
    rows = []
    for i in range(n_vms):
        stats = trace_statistics(library.cpu_series[i])
        rows.append(
            [
                f"vm-{i}",
                stats["mean"],
                stats["cv"],
                stats["min"],
                stats["max"],
                stats["rel_dev_p05"],
                stats["rel_dev_p95"],
            ]
        )
    return FigureResult(
        figure="Figure 2",
        title=f"VM CPU performance variability ({days:g} days)",
        headers=["vm", "mean π·κ", "CV", "min", "max", "relDev p05", "relDev p95"],
        rows=rows,
        expectation=(
            "CPU performance of same-class VMs differs across instances and "
            "fluctuates over time, with relative deviations from the mean "
            "commonly exceeding ±10% and occasional deep multi-tenancy dips"
        ),
        notes="synthetic FutureGrid-like traces (see DESIGN.md substitution #1)",
    )


def figure3(
    seed: int = 0,
    days: float = 4.0,
    fast: bool = False,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 3: network latency/bandwidth variation between a VM pair.

    ``jobs`` is accepted for driver-interface uniformity (no sweep).
    """
    if fast:
        days = 1.0
    from ..cloud.traces import NetworkTraceConfig

    library = TraceLibrary(
        seed=seed,
        n_cpu_series=1,
        n_network_series=4,
        network=NetworkTraceConfig(duration_s=days * 86400.0),
    )
    rows = []
    for i in range(library.n_network_series):
        lat = trace_statistics(library.latency_series[i] * 1000.0)  # ms
        bw = trace_statistics(library.bandwidth_series[i])
        rows.append(
            [
                f"pair-{i}",
                lat["mean"],
                lat["max"],
                lat["cv"],
                bw["mean"],
                bw["min"],
                bw["cv"],
            ]
        )
    return FigureResult(
        figure="Figure 3",
        title=f"network variability between VM pairs ({days:g} days)",
        headers=[
            "pair",
            "lat mean (ms)",
            "lat max (ms)",
            "lat CV",
            "bw mean (Mbps)",
            "bw min (Mbps)",
            "bw CV",
        ],
        rows=rows,
        expectation=(
            "latency shows sharp spikes (orders of magnitude above the "
            "base) while available bandwidth drifts and dips below the "
            "rated value over the same period"
        ),
        notes="synthetic traces; latency in milliseconds",
    )


# ---------------------------------------------------------------------------
# Figures 4–5: static deployments
# ---------------------------------------------------------------------------


def figure4(
    rate: float = 5.0,
    fast: bool = False,
    seed: int = 7,
    include_bruteforce: bool = True,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 4: static deployments under the four variability modes."""
    period = _FAST_PERIOD if fast else _FULL_PERIOD
    policies = ["static-local", "static-global"]
    if include_bruteforce:
        policies.insert(0, "static-bruteforce")
    scenarios = [
        Scenario(
            rate=rate,
            variability=mode,
            seed=seed,
            period=period,
        )
        for mode in ("none", "data", "infra", "both")
    ]
    rows_raw = sweep(scenarios, policies, jobs=jobs)
    rows = [
        [r.variability, r.policy, r.omega, r.theta, r.constraint_met]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Figure 4",
        title=f"static deployments vs variability (rate={rate:g} msg/s)",
        headers=["variability", "policy", "Ω̄", "Θ", "Ω̄≥Ω̂-ε"],
        rows=rows,
        expectation=(
            "with no variability every static strategy satisfies Ω̂ "
            "(brute force best, then local, then global); introducing data "
            "and/or infrastructure variability degrades all static "
            "deployments toward or below the constraint while Θ stays flat "
            "— motivating continuous re-deployment"
        ),
        sweep_rows=rows_raw,
    )


def figure5(
    rates: Optional[Sequence[float]] = None,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 5: static local/global relative throughput vs data rate."""
    period = _FAST_PERIOD if fast else _FULL_PERIOD
    rates = tuple(rates) if rates is not None else (_FAST_RATES if fast else _FULL_RATES)
    scenarios = [
        Scenario(rate=r, variability="none", seed=seed, period=period)
        for r in rates
    ]
    rows_raw = sweep(scenarios, ["static-local", "static-global"], jobs=jobs)
    rows = [
        [r.rate, r.policy, r.omega, r.theta, r.constraint_met]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Figure 5",
        title="static deployments vs data rate (no variability)",
        headers=["rate", "policy", "Ω̄", "Θ", "Ω̄≥Ω̂-ε"],
        rows=rows,
        expectation=(
            "the throughput of static local/global deployments decreases "
            "as the data rate increases even without variability (integer "
            "headroom shrinks), further motivating runtime adaptation"
        ),
        sweep_rows=rows_raw,
    )


# ---------------------------------------------------------------------------
# Figures 6–7: runtime adaptation, local vs global
# ---------------------------------------------------------------------------


def figure6(
    rates: Optional[Sequence[float]] = None,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 6: local vs global adaptation under infrastructure variability."""
    period = _FAST_PERIOD if fast else _FULL_PERIOD
    rates = tuple(rates) if rates is not None else (_FAST_RATES if fast else _FULL_RATES)
    scenarios = [
        Scenario(
            rate=r,
            rate_kind="constant",
            variability="infra",
            seed=seed,
            period=period,
        )
        for r in rates
    ]
    rows_raw = sweep(scenarios, ["local", "global"], jobs=jobs)
    rows = [
        [r.rate, r.policy, r.omega, r.theta, r.cost, r.constraint_met]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Figure 6",
        title="runtime adaptation under infrastructure variability",
        headers=["rate", "policy", "Ω̄", "Θ", "cost $", "Ω̄≥Ω̂-ε"],
        rows=rows,
        expectation=(
            "both heuristics meet the Ω̂ constraint despite infrastructure "
            "variability; the global heuristic achieves higher Θ at high "
            "data rates, the local heuristic at low rates"
        ),
        sweep_rows=rows_raw,
    )


def figure7(
    rates: Optional[Sequence[float]] = None,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 7: local vs global adaptation under data-rate variability."""
    period = _FAST_PERIOD if fast else _FULL_PERIOD
    rates = tuple(rates) if rates is not None else (_FAST_RATES if fast else _FULL_RATES)
    scenarios = [
        Scenario(
            rate=r,
            rate_kind="wave",
            variability="data",
            seed=seed,
            period=period,
        )
        for r in rates
    ]
    rows_raw = sweep(scenarios, ["local", "global"], jobs=jobs)
    rows = [
        [r.rate, r.policy, r.omega, r.theta, r.cost, r.constraint_met]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Figure 7",
        title="runtime adaptation under data-rate variability (stable infra)",
        headers=["rate", "policy", "Ω̄", "Θ", "cost $", "Ω̄≥Ω̂-ε"],
        rows=rows,
        expectation=(
            "both heuristics satisfy Ω̂ within ε ≤ 0.05 across the rate "
            "range; global wins on Θ above ~10 msg/s (it anticipates the "
            "downstream impact of re-deployments), local wins below (global "
            "over-estimates downstream effects at low rates)"
        ),
        sweep_rows=rows_raw,
    )


# ---------------------------------------------------------------------------
# Figures 8–9: the dollar value of application dynamism
# ---------------------------------------------------------------------------

_FIG8_POLICIES = ("global", "global-nodyn", "local", "local-nodyn")


def figure8(
    rates: Optional[Sequence[float]] = None,
    fast: bool = False,
    seed: int = 7,
    n_seeds: int = 1,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 8: dollar cost over 10 h for the four adaptive policies.

    ``n_seeds > 1`` replicates the sweep over consecutive seeds and
    averages the rows (workload phase and trace assignments vary per
    seed), tightening the Fig. 9 savings estimates.
    """
    period = _FAST_PERIOD if fast else 10 * 3600.0
    rates = tuple(rates) if rates is not None else (_FAST_RATES if fast else _FULL_RATES)
    if n_seeds < 1:
        raise ValueError("n_seeds must be ≥ 1")
    replicas = []
    for s in range(seed, seed + n_seeds):
        scenarios = [
            Scenario(
                rate=r,
                rate_kind="wave",
                variability="both",
                seed=s,
                period=period,
            )
            for r in rates
        ]
        replicas.append(sweep(scenarios, list(_FIG8_POLICIES), jobs=jobs))
    rows_raw = average_rows(replicas) if n_seeds > 1 else replicas[0]
    rows = [
        [r.rate, r.policy, r.cost, r.omega, r.theta, r.constraint_met]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Figure 8",
        title=f"dollar cost over {period / 3600:g} h, by policy and rate",
        headers=["rate", "policy", "cost $", "Ω̄", "Θ", "Ω̄≥Ω̂-ε"],
        rows=rows,
        expectation=(
            "global spends the least at high rates and local at low rates; "
            "disabling application dynamism always costs more — global-nodyn "
            "≈15% more than global on average, local-nodyn up to ~70% more "
            "than global"
        ),
        sweep_rows=rows_raw,
    )


def figure9(
    fig8: Optional[FigureResult] = None,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Fig. 9: relative cost savings attributable to application dynamism.

    Derived from the Fig. 8 sweep: for each rate, the savings of the
    dynamic policy over its no-dynamism twin and of global over
    local-nodyn.
    """
    if fig8 is None:
        fig8 = figure8(fast=fast, seed=seed, jobs=jobs)
    by_key = {(r.rate, r.policy): r for r in fig8.sweep_rows}
    rates = sorted({r.rate for r in fig8.sweep_rows})

    def savings(a: float, b: float) -> float:
        """Fractional savings of cost ``a`` relative to cost ``b``."""
        return (b - a) / b if b > 0 else 0.0

    rows = []
    g_saves, l_saves = [], []
    for rate in rates:
        g = by_key[(rate, "global")].cost
        gn = by_key[(rate, "global-nodyn")].cost
        loc = by_key[(rate, "local")].cost
        ln = by_key[(rate, "local-nodyn")].cost
        sg = savings(g, gn)
        sl = savings(loc, ln)
        sgl = savings(g, ln)
        g_saves.append(sg)
        l_saves.append(sl)
        rows.append([rate, sg * 100, sl * 100, sgl * 100])
    rows.append(
        [
            "mean",
            float(np.mean(g_saves)) * 100,
            float(np.mean(l_saves)) * 100,
            float(
                np.mean(
                    [
                        savings(
                            by_key[(r, "global")].cost,
                            by_key[(r, "local-nodyn")].cost,
                        )
                        for r in rates
                    ]
                )
            )
            * 100,
        ]
    )
    return FigureResult(
        figure="Figure 9",
        title="cost benefit of application dynamism (continuous re-deployment)",
        headers=[
            "rate",
            "global vs global-nodyn (%)",
            "local vs local-nodyn (%)",
            "global vs local-nodyn (%)",
        ],
        rows=rows,
        expectation=(
            "application dynamism saves ~15% on average for the global "
            "heuristic and up to ~70% comparing global against the local "
            "heuristic without dynamism"
        ),
        sweep_rows=fig8.sweep_rows,
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the S26 reliability benchmark
# ---------------------------------------------------------------------------

_STORM_POLICIES = ("static-global", "local", "global", "hedged")


def figure_storm(
    rate: float = 10.0,
    fast: bool = False,
    seed: int = 3,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Failure storm: policies on a cheap-but-revocable spot tier.

    Not a figure of the paper — it exercises the fault-tolerance future
    work its conclusion proposes.  Every policy deploys against a
    catalog with a 70%-discounted spot tier whose VMs are forcibly
    revoked (~20 min mean time between revocations per spot VM, 2 min
    notice).  The ``hedged`` policy reads the notices and drains doomed
    VMs in advance; the paper's heuristics only react after the crash.
    """
    period = _FAST_PERIOD if fast else 2 * 3600.0
    scenario = failure_storm_scenario(rate=rate, period=period, seed=seed)
    rows_raw = sweep([scenario], list(_STORM_POLICIES), jobs=jobs)
    rows = [
        [
            r.policy,
            r.omega,
            r.theta,
            r.cost,
            r.crashes,
            r.lost_messages,
            r.mean_recovery_s if r.mean_recovery_s is not None else "—",
            r.constraint_met,
        ]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Failure storm",
        title=f"reliability under spot revocations (rate={rate:g} msg/s)",
        headers=[
            "policy", "Ω̄", "Θ", "cost $", "crashes", "msgs lost",
            "mean recovery s", "Ω̄≥Ω̂-ε",
        ],
        rows=rows,
        expectation=(
            "the static deployment bleeds capacity with every revocation; "
            "the paper's adaptive heuristics recover but pay in lost "
            "messages and post-crash catch-up; the hedged policy drains "
            "doomed VMs before the revocation fires, holding the highest "
            "Θ at a comparable dollar cost"
        ),
        notes=(
            "beyond the paper (its conclusion's fault-tolerance future "
            "work); spot tier at 30% of on-demand price, checkpoints "
            "every 120 s"
        ),
        sweep_rows=rows_raw,
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the S27 multi-tenant contention benchmark
# ---------------------------------------------------------------------------

_TENANT_ADMISSIONS = ("free-for-all", "fair-share")


def figure_tenants(
    n_tenants: int = 64,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Multi-tenant contention: admission policies on a shared provider.

    Not a figure of the paper — it exercises the multi-tenancy the
    paper's cloud model abstracts away.  ``n_tenants`` dataflows with
    rates spread across 2–20 msg/s share one provider whose per-class
    pools hold exactly one VM per tenant per class — far below the
    heavy tenants' ideal fleets; the same fleet runs once under
    first-come-first-served admission (``free-for-all``) and once under
    weighted max-min fair-share.

    ``jobs`` is accepted for driver-interface uniformity; the fleet
    already advances every tenant in one lockstep kernel.
    """
    if fast:
        n_tenants = 16
    period = 900.0 if fast else 1800.0
    rows = []
    for admission in _TENANT_ADMISSIONS:
        mt = multi_tenant_scenario(
            n_tenants=n_tenants,
            admission=admission,
            seed=seed,
            period=period,
            rate_lo=2.0,
            rate_hi=20.0,
            capacity_tightness=1.0,
        )
        fr = run_fleet(mt)
        omegas = [r.omega for r in fr.rows]
        starved = sum(1 for om in omegas if om < 0.05)
        met = sum(1 for r in fr.rows if r.constraint_met)
        rows.append(
            [
                admission,
                fr.n_tenants,
                fr.fleet_omega,
                min(omegas),
                starved,
                fr.fleet_mu,
                fr.denied_total,
                f"{met}/{fr.n_tenants}",
            ]
        )
    return FigureResult(
        figure="Multi-tenant fleet",
        title=f"admission policies under capacity contention ({n_tenants} tenants)",
        headers=[
            "admission", "tenants", "fleet Ω̄", "Ω̄ min", "starved",
            "fleet μ $", "denied", "Ω̄≥Ω̂-ε",
        ],
        rows=rows,
        expectation=(
            "the classic fairness-vs-utilization tradeoff: free-for-all "
            "admission serves whoever asks first, maximizing fleet Ω̄ but "
            "letting arrival order pick winners — late heavy tenants end "
            "with zero VMs (starved, Ω̄ = 0); weighted max-min fair-share "
            "caps every tenant at its per-class share, so no tenant "
            "starves (Ω̄ min > 0) at the cost of a lower fleet Ω̄"
        ),
        notes=(
            "beyond the paper (shared-provider multi-tenancy, S27); "
            "per-class pools hold one VM per tenant per class; Θ is a "
            "misleading fairness lens here — a starved tenant pays "
            "nothing, so its relative value stays high"
        ),
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the S28 pricing-model × policy grid
# ---------------------------------------------------------------------------

_PRICING_POLICIES = ("static-global", "global", "anneal")


def figure_pricing(
    rate: float = 8.0,
    fast: bool = False,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Cost-model × policy grid: every pricing strategy, three policies.

    Not a figure of the paper — it exercises the S28 pricing-model
    diversity.  One workload (wave rate, both variability modes) runs
    under each :data:`~repro.cloud.billing.BILLING_MODELS` strategy with
    a static heuristic, the paper's global adaptation, and the annealing
    baseline (whose search prices plans under the scenario's billing
    model).  The ``spot_trace`` rows keep the scenario's spot tier off
    so the grid isolates pure pricing effects.
    """
    from ..cloud.billing import BILLING_MODELS

    period = _FAST_PERIOD if fast else 2 * 3600.0
    scenarios = [
        Scenario(
            rate=rate,
            rate_kind="wave",
            variability="both",
            seed=seed,
            period=period,
            billing_model=model,
        )
        for model in BILLING_MODELS
    ]
    rows_raw = sweep(scenarios, list(_PRICING_POLICIES), jobs=jobs)
    rows = [
        [
            r.billing_model,
            r.policy,
            r.omega,
            r.gamma,
            r.cost,
            r.theta,
            r.constraint_met,
        ]
        for r in rows_raw
    ]
    return FigureResult(
        figure="Pricing grid",
        title=f"pricing model × policy grid (rate={rate:g} msg/s)",
        headers=[
            "billing", "policy", "Ω̄", "Γ̄", "cost $", "Θ", "Ω̄≥Ω̂-ε",
        ],
        rows=rows,
        expectation=(
            "discounted models (per-second, reserved, sustained-use, "
            "below-list spot traces) lower μ and therefore raise Θ for "
            "the same deployments; adaptive policies keep their Ω̄ "
            "advantage under every pricing regime; annealing narrows the "
            "static gap by pricing its search under the actual model"
        ),
        notes=(
            "beyond the paper (S28 pricing-model diversity); reserved "
            "commits 3 h at 40% discount, sustained-use tiers over an "
            "8 h window, spot traces stay below list price"
        ),
        sweep_rows=rows_raw,
    )


ALL_FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "storm": figure_storm,
    "tenants": figure_tenants,
    "pricing": figure_pricing,
}
