"""Scenario catalog for the paper's evaluation (§8.1).

Defines the experimental setup every figure shares:

* the abstract dynamic dataflow of Fig. 1 (four PEs; E2 and E3 carry two
  alternates each; E1 duplicates its output to both branches and E4
  interleaves them),
* the AWS-like VM catalog,
* the data-rate profiles (constant / periodic wave / random walk, 2–50
  msg/s, ~100 KB messages),
* the variability modes (none / data / infrastructure / both),
* σ calibrated as in the paper: the acceptable hourly cost at maximum
  application value is $2 per msg/s of input rate ("$4/hour for execution
  at 2 msg/s … scaled linearly up to $100/hour for 50 msg/s"), and the
  acceptable cost at minimum value is 40% of that (calibration choice,
  recorded in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Literal, Optional

from ..cloud.billing import BILLING_MODELS, BillingModel, make_billing_model
from ..cloud.failures import FailureModel, SpotRevocationModel
from ..cloud.provider import CloudProvider
from ..cloud.resources import VMClass, aws_2013_catalog, spot_variants
from ..cloud.traces import TraceLibrary, TraceReplayPerformance
from ..cloud.variability import ConstantPerformance, PerformanceModel
from ..core.objective import ObjectiveSpec, sigma_from_expectations
from ..core.policies import Policy, make_policy
from ..dataflow.graph import DynamicDataflow
from ..dataflow.pe import Alternate, ProcessingElement
from ..engine.manager import RunManager, RunResult
from ..workloads.rates import (
    ConstantRate,
    PeriodicWave,
    RandomWalkRate,
    RateProfile,
)

__all__ = [
    "fig1_dataflow",
    "scaled_dataflow",
    "standard_spec",
    "make_profile",
    "make_performance",
    "Scenario",
    "MultiTenantScenario",
    "failure_storm_scenario",
    "multi_tenant_scenario",
    "run_policy",
    "RateKind",
    "VariabilityMode",
    "OMEGA_MIN",
    "EPSILON",
    "MESSAGE_SIZE_MB",
]

RateKind = Literal["constant", "wave", "walk"]
VariabilityMode = Literal["none", "data", "infra", "both"]

#: Paper-wide constants (§8.2): Ω̂ = 0.7, ε = 0.05, ~100 KB messages.
OMEGA_MIN = 0.7
EPSILON = 0.05
MESSAGE_SIZE_MB = 0.1

#: Acceptable $/hour at maximum application value, per msg/s of input.
_DOLLARS_PER_MSGS = 2.0
#: Acceptable cost at minimum value, as a fraction of the maximum's.
_MIN_VALUE_COST_FRACTION = 0.4


def fig1_dataflow() -> DynamicDataflow:
    """The paper's running example (Fig. 1).

    ====  ==========  =====  =====  ============  =======================
    PE    alternate   value  cost   selectivity   intent
    ====  ==========  =====  =====  ============  =======================
    E1    e1          1.0    0.5    1.0           ingest / parse
    E2    e2.1        1.0    2.0    1.0           full-fidelity analytic
    E2    e2.2        0.88   1.6    1.0           approximate analytic
    E3    e3.1        1.0    3.0    0.5           rich classifier
    E3    e3.2        0.85   2.4    0.5           cheap classifier
    E4    e4          1.0    0.8    1.0           merge / publish
    ====  ==========  =====  =====  ============  =======================

    Costs are core-seconds per message on the standard (π = 1) core.
    The approximate alternates trade ~12–15% of value for ~20% of cost;
    the full dataflow's per-message demand drops from 6.7 to 5.7 standard
    core-seconds when both cheap alternates are active — calibrated so
    that disabling application dynamism costs ~15% more, the paper's
    headline number (Fig. 9).
    """
    e1 = ProcessingElement("E1", [Alternate("e1", value=1.0, cost=0.5)])
    e2 = ProcessingElement(
        "E2",
        [
            Alternate("e2.1", value=1.0, cost=2.0),
            Alternate("e2.2", value=0.88, cost=1.6),
        ],
    )
    e3 = ProcessingElement(
        "E3",
        [
            Alternate("e3.1", value=1.0, cost=3.0, selectivity=0.5),
            Alternate("e3.2", value=0.85, cost=2.4, selectivity=0.5),
        ],
    )
    e4 = ProcessingElement("E4", [Alternate("e4", value=1.0, cost=0.8)])
    return DynamicDataflow(
        [e1, e2, e3, e4],
        [("E1", "E2"), ("E1", "E3"), ("E2", "E4"), ("E3", "E4")],
    )


def scaled_dataflow(stages: int = 4, alternates: int = 3) -> DynamicDataflow:
    """A larger diamond-chain dataflow for scalability experiments.

    ``stages`` diamonds are chained; every middle PE carries
    ``alternates`` alternates with geometrically spaced value/cost — "10's
    of alternates" per the paper's scaling note.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    if alternates < 1:
        raise ValueError("need at least one alternate")
    pes: list[ProcessingElement] = [
        ProcessingElement("in", [Alternate("in", value=1.0, cost=0.3)])
    ]
    edges: list[tuple[str, str]] = []
    prev = "in"
    for s in range(stages):
        left = f"s{s}L"
        right = f"s{s}R"
        join = f"s{s}J"
        for name, sel in ((left, 1.0), (right, 0.5)):
            alts = [
                Alternate(
                    f"{name}.a{j}",
                    value=1.0 * (0.7**j),
                    cost=2.0 * (0.6**j),
                    selectivity=sel,
                )
                for j in range(alternates)
            ]
            pes.append(ProcessingElement(name, alts))
        pes.append(
            ProcessingElement(join, [Alternate(join, value=1.0, cost=0.5)])
        )
        edges += [(prev, left), (prev, right), (left, join), (right, join)]
        prev = join
    return DynamicDataflow(pes, edges)


def standard_spec(
    rate: float,
    dataflow: Optional[DynamicDataflow] = None,
    period: float = 6 * 3600.0,
    interval: float = 60.0,
) -> ObjectiveSpec:
    """Objective spec with the paper's σ calibration at a mean input rate."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    df = dataflow if dataflow is not None else fig1_dataflow()
    period_hours = period / 3600.0
    cost_at_max = _DOLLARS_PER_MSGS * rate * period_hours
    cost_at_min = _MIN_VALUE_COST_FRACTION * cost_at_max
    sigma = sigma_from_expectations(df, cost_at_max, cost_at_min)
    return ObjectiveSpec(
        omega_min=OMEGA_MIN,
        epsilon=EPSILON,
        sigma=sigma,
        period=period,
        interval=interval,
    )


def make_profile(kind: RateKind, rate: float, seed: int = 0) -> RateProfile:
    """One of the three §8.1 rate profiles at a given mean rate."""
    if kind == "constant":
        return ConstantRate(rate)
    if kind == "wave":
        return PeriodicWave(mean=rate, amplitude=rate * 0.5, period=3600.0)
    if kind == "walk":
        return RandomWalkRate(mean=rate, step_sigma=0.08, seed=seed)
    raise ValueError(f"unknown rate kind {kind!r}")


def make_performance(
    mode: VariabilityMode, seed: int = 0
) -> PerformanceModel:
    """Infrastructure model for a variability mode.

    ``data`` means *only* data-rate variability, so the infrastructure is
    ideal; ``infra`` and ``both`` replay the synthetic FutureGrid-like
    traces.
    """
    if mode in ("none", "data"):
        return ConstantPerformance()
    return TraceReplayPerformance(_trace_library(seed))


@lru_cache(maxsize=8)
def _trace_library(seed: int) -> TraceLibrary:
    """Memoized synthetic trace library.

    Generating the series costs tens of milliseconds; a sweep builds one
    provider per cell, so without memoization that cost repeats for every
    cell.  ``TraceLibrary`` is immutable after construction (the replay
    caches live on ``TraceReplayPerformance``, which stays per-provider),
    so sharing one instance per seed is safe.
    """
    return TraceLibrary(seed=seed)


@dataclass
class Scenario:
    """A fully specified experiment: dataflow + workload + infrastructure.

    Build with the factory defaults for the paper's setup, then override
    fields as needed.  ``provider()`` returns a *fresh* provider (billing
    reset) so repeated runs are independent.
    """

    rate: float
    rate_kind: RateKind = "constant"
    variability: VariabilityMode = "none"
    seed: int = 0
    period: float = 6 * 3600.0
    interval: float = 60.0
    tick: float = 1.0
    dataflow: DynamicDataflow = field(default_factory=fig1_dataflow)
    catalog: list[VMClass] = field(default_factory=aws_2013_catalog)
    startup_delay: float = 0.0
    #: Mean time between VM failures in hours (None disables crashes).
    mtbf_hours: Optional[float] = None
    #: Periodic PE-state checkpoint interval in seconds (None disables).
    checkpoint_interval: Optional[float] = None
    #: Latency before checkpoint-restored state processes again (seconds).
    restore_latency: float = 0.0
    #: Mean time between spot revocations in hours (None = no spot tier;
    #: setting it adds discounted ``-spot`` twins to the catalog).
    spot_mtbf_hours: Optional[float] = None
    #: Advance warning before a spot revocation (seconds).
    spot_notice_s: float = 120.0
    #: Spot price discount off on-demand, as a fraction in (0, 1).
    spot_discount: float = 0.7
    #: Failure-oracle look-ahead in seconds (None = 2 × interval).
    hedge_horizon: Optional[float] = None
    #: Pricing model (S28): one of ``cloud.billing.BILLING_MODELS``.
    billing_model: str = "on_demand_hourly"
    #: ``reserved``: committed instance-hours per instance.
    billing_commit_hours: int = 3
    #: ``reserved`` / ``sustained_use``: discount fraction in [0, 1).
    billing_discount: float = 0.4
    #: ``reserved``: upfront fee as a fraction of the committed savings.
    billing_upfront_fraction: float = 0.5
    #: ``sustained_use``: billing-window length in hours.
    billing_window_hours: int = 8
    #: ``spot_trace``: price-trace step in seconds.
    billing_trace_resolution_s: float = 300.0
    #: ``spot_trace``: multiplier band (cap ≤ 1 keeps the traced price
    #: at or below the list price).
    billing_trace_floor: float = 0.35
    billing_trace_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.billing_model not in BILLING_MODELS:
            raise ValueError(
                f"unknown billing model {self.billing_model!r}; "
                f"known: {BILLING_MODELS}"
            )
        # "data" variability forces a non-constant rate profile.
        if self.variability in ("data", "both") and self.rate_kind == "constant":
            self.rate_kind = "wave"

    @property
    def spec(self) -> ObjectiveSpec:
        return standard_spec(
            self.rate, self.dataflow, period=self.period, interval=self.interval
        )

    def profiles(self) -> dict[str, RateProfile]:
        profile = make_profile(self.rate_kind, self.rate, seed=self.seed)
        return {name: profile for name in self.dataflow.inputs}

    def effective_catalog(self) -> list[VMClass]:
        """The catalog runs actually deploy against.

        With a spot tier configured, the discounted ``-spot`` twins join
        the on-demand classes.  Spot twins are concatenated *first* so
        the stable capacity sort places each twin just before its
        on-demand sibling: best-fit provisioning (first class covering a
        deficit) then prefers the cheaper spot class, while "the largest
        class" (``catalog[-1]``, the local strategy's pick) stays
        on-demand.
        """
        if self.spot_mtbf_hours is None:
            return list(self.catalog)
        return sorted(
            spot_variants(self.catalog, self.spot_discount)
            + list(self.catalog)
        )

    def billing(self) -> BillingModel:
        """The pricing model all of this scenario's meters share."""
        return make_billing_model(
            self.billing_model,
            commit_hours=self.billing_commit_hours,
            discount=self.billing_discount,
            upfront_fraction=self.billing_upfront_fraction,
            window_hours=self.billing_window_hours,
            seed=self.seed,
            resolution_s=self.billing_trace_resolution_s,
            floor=self.billing_trace_floor,
            cap=self.billing_trace_cap,
        )

    def provider(self) -> CloudProvider:
        return CloudProvider(
            self.effective_catalog(),
            performance=make_performance(self.variability, seed=self.seed),
            startup_delay=self.startup_delay,
            billing_model=self.billing(),
        )

    def policy(self, name: str) -> Policy:
        return make_policy(
            name,
            self.dataflow,
            self.effective_catalog(),
            self.spec,
            billing=self.billing(),
        )

    def failures(self) -> Optional[FailureModel]:
        """Failure model for this scenario (None when mtbf_hours unset)."""
        if self.mtbf_hours is None:
            return None
        return FailureModel(self.mtbf_hours, seed=self.seed)

    def revocations(self) -> Optional[SpotRevocationModel]:
        """Spot-revocation model (None when no spot tier is configured)."""
        if self.spot_mtbf_hours is None:
            return None
        return SpotRevocationModel(
            self.spot_mtbf_hours,
            seed=self.seed,
            notice_s=self.spot_notice_s,
        )

    @property
    def uses_reliability(self) -> bool:
        """True when any failure/recovery machinery is active."""
        return (
            self.mtbf_hours is not None
            or self.spot_mtbf_hours is not None
            or self.checkpoint_interval is not None
        )

    def fingerprint(self) -> dict:
        """Canonical structural identity for the result cache (S22).

        Plain JSON-serializable data covering *every* field that shapes a
        run: the scalar knobs, the dataflow value by value (PE order,
        alternates, edges, routing patterns), and the VM catalog.  Two
        scenarios with equal fingerprints produce bit-identical rows, and
        any field edit changes the fingerprint.
        """
        df = self.dataflow
        return {
            "rate": self.rate,
            "rate_kind": self.rate_kind,
            "variability": self.variability,
            "seed": self.seed,
            "period": self.period,
            "interval": self.interval,
            "tick": self.tick,
            "startup_delay": self.startup_delay,
            "mtbf_hours": self.mtbf_hours,
            "checkpoint_interval": self.checkpoint_interval,
            "restore_latency": self.restore_latency,
            "spot_mtbf_hours": self.spot_mtbf_hours,
            "spot_notice_s": self.spot_notice_s,
            "spot_discount": self.spot_discount,
            "hedge_horizon": self.hedge_horizon,
            "billing_model": self.billing_model,
            "billing_commit_hours": self.billing_commit_hours,
            "billing_discount": self.billing_discount,
            "billing_upfront_fraction": self.billing_upfront_fraction,
            "billing_window_hours": self.billing_window_hours,
            "billing_trace_resolution_s": self.billing_trace_resolution_s,
            "billing_trace_floor": self.billing_trace_floor,
            "billing_trace_cap": self.billing_trace_cap,
            "dataflow": [
                {
                    "pe": p.name,
                    "alternates": [
                        [a.name, a.value, a.cost, a.selectivity]
                        for a in p.alternates
                    ],
                    "succ": list(df.successors(p.name)),
                    "split": df.split_pattern(p.name).name,
                    "merge": df.merge_pattern(p.name).name,
                }
                for p in df.pes
            ],
            "catalog": [
                [c.name, c.cores, c.core_speed, c.bandwidth_mbps,
                 c.hourly_price, c.spot]
                for c in self.catalog
            ],
        }


@dataclass(frozen=True)
class MultiTenantScenario:
    """A fleet of N tenant dataflows sharing one finite cloud (S27).

    Each tenant ``k`` runs the standard Fig. 1 scenario at its own mean
    input rate, spread linearly over ``[rate_lo, rate_hi]``; all tenants
    share the clock discipline (period, interval, tick), the variability
    mode + seed (one performance model serves the whole fleet), and one
    :class:`~repro.cloud.provider.CloudProvider` whose per-class pools
    are sized by ``capacity_tightness``.  ``tenant_scenario(k)`` returns
    the *isolated-run oracle* for tenant ``k`` — the exact single-tenant
    :class:`Scenario` whose results the shared kernel must reproduce bit
    for bit when capacity is not contended.
    """

    n_tenants: int = 1000
    admission: str = "free-for-all"
    policy: str = "global"
    rate_lo: float = 2.0
    rate_hi: float = 8.0
    rate_kind: RateKind = "constant"
    variability: VariabilityMode = "none"
    seed: int = 7
    period: float = 600.0
    interval: float = 60.0
    tick: float = 1.0
    #: Sizes each class's shared pool as a fraction of one-instance-per-
    #: tenant (``ceil(tightness · n_tenants)`` instances per class);
    #: ``None`` leaves every pool unlimited (the uncontended fleet).
    capacity_tightness: Optional[float] = 0.5
    #: Fair-share weight per tenant (``None`` = equal weights).
    weights: Optional[tuple[float, ...]] = None
    #: Pricing model shared by every tenant meter (the cloud has one
    #: price list); forwarded to each tenant's oracle scenario so the
    #: shared-vs-isolated bit-identity contract covers pricing too.
    billing_model: str = "on_demand_hourly"

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError("need at least one tenant")
        if self.billing_model not in BILLING_MODELS:
            raise ValueError(
                f"unknown billing model {self.billing_model!r}; "
                f"known: {BILLING_MODELS}"
            )
        if self.rate_lo <= 0 or self.rate_hi < self.rate_lo:
            raise ValueError("need 0 < rate_lo <= rate_hi")
        if self.weights is not None and len(self.weights) != self.n_tenants:
            raise ValueError("weights must match n_tenants 1:1")

    def tenant_rate(self, k: int) -> float:
        """Tenant ``k``'s mean input rate (linear spread over the band)."""
        if self.n_tenants == 1:
            return self.rate_lo
        span = self.rate_hi - self.rate_lo
        return self.rate_lo + span * k / (self.n_tenants - 1)

    def tenant_scenario(self, k: int) -> Scenario:
        """The isolated single-tenant oracle scenario for tenant ``k``."""
        if not 0 <= k < self.n_tenants:
            raise ValueError(f"tenant {k} outside [0, {self.n_tenants})")
        return Scenario(
            rate=self.tenant_rate(k),
            rate_kind=self.rate_kind,
            variability=self.variability,
            seed=self.seed,
            period=self.period,
            interval=self.interval,
            tick=self.tick,
            billing_model=self.billing_model,
        )

    def capacity(self, catalog: list[VMClass]) -> Optional[dict[str, int]]:
        """Shared per-class pool sizes, or ``None`` when unlimited."""
        if self.capacity_tightness is None:
            return None
        per_class = max(1, math.ceil(self.capacity_tightness * self.n_tenants))
        return {c.name: per_class for c in catalog}

    def tenant_weights(self) -> dict[int, float]:
        """Fair-share weight per tenant id."""
        if self.weights is None:
            return {k: 1.0 for k in range(self.n_tenants)}
        return {k: float(w) for k, w in enumerate(self.weights)}

    def fingerprint(self) -> dict:
        """Canonical identity of the fleet configuration."""
        return {
            "n_tenants": self.n_tenants,
            "admission": self.admission,
            "policy": self.policy,
            "rate_lo": self.rate_lo,
            "rate_hi": self.rate_hi,
            "rate_kind": self.rate_kind,
            "variability": self.variability,
            "seed": self.seed,
            "period": self.period,
            "interval": self.interval,
            "tick": self.tick,
            "capacity_tightness": self.capacity_tightness,
            "weights": list(self.weights) if self.weights else None,
            "billing_model": self.billing_model,
        }


def multi_tenant_scenario(
    n_tenants: int = 1000,
    admission: str = "free-for-all",
    **overrides,
) -> MultiTenantScenario:
    """The S27 multi-tenant contention benchmark.

    A 1000-tenant fleet of Fig. 1 dataflows at rates spread over
    2–8 msg/s, on one shared cloud whose per-class pools hold half an
    instance per tenant — tight enough that the high-rate tenants'
    demand collides with the pool, so the two admission policies
    (``free-for-all`` vs ``fair-share``) produce visibly different
    denial patterns.  Keyword overrides pass through to
    :class:`MultiTenantScenario`.
    """
    return MultiTenantScenario(
        n_tenants=n_tenants, admission=admission, **overrides
    )


def failure_storm_scenario(
    rate: float = 10.0,
    period: float = 3600.0,
    seed: int = 3,
) -> Scenario:
    """The S26 reliability benchmark: a spot-revocation storm.

    A spot tier 70% below on-demand price with a ~20-minute mean time
    between revocations per spot VM (a storm: several forced stops per
    hour of fleet time), two-minute revocation notices, periodic PE
    checkpoints and a short restore latency.  Cost-driven heuristics
    deploy onto the cheap spot tier and then live with the consequences;
    the ``hedged`` policy uses the notices to drain doomed VMs first.
    """
    return Scenario(
        rate=rate,
        variability="none",
        period=period,
        seed=seed,
        spot_mtbf_hours=1.0 / 3.0,
        spot_notice_s=120.0,
        spot_discount=0.7,
        checkpoint_interval=120.0,
        restore_latency=10.0,
    )


def run_policy(
    scenario: Scenario,
    policy_name: str,
    policy_factory: Optional[Callable[[Scenario], Policy]] = None,
) -> RunResult:
    """Run one policy on one scenario and return its results."""
    policy = (
        policy_factory(scenario)
        if policy_factory is not None
        else scenario.policy(policy_name)
    )
    manager = RunManager(
        dataflow=scenario.dataflow,
        profiles=scenario.profiles(),
        policy=policy,
        provider=scenario.provider(),
        spec=scenario.spec,
        tick=scenario.tick,
        message_size_mb=MESSAGE_SIZE_MB,
        failures=scenario.failures(),
        revocations=scenario.revocations(),
        checkpoint_interval=scenario.checkpoint_interval,
        restore_latency=scenario.restore_latency,
        hedge_horizon=scenario.hedge_horizon,
    )
    return manager.run()
