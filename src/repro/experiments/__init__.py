"""Experiment harness (S14): scenarios, sweeps, per-figure reproducers."""

from . import batch, cache
from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure_storm,
)
from .parallel import resolve_jobs
from .report import generate_report, write_report
from .runner import SweepRow, average_rows, sweep
from .scenarios import (
    EPSILON,
    MESSAGE_SIZE_MB,
    OMEGA_MIN,
    Scenario,
    failure_storm_scenario,
    fig1_dataflow,
    make_performance,
    make_profile,
    run_policy,
    scaled_dataflow,
    standard_spec,
)

__all__ = [
    "ALL_FIGURES",
    "batch",
    "cache",
    "EPSILON",
    "MESSAGE_SIZE_MB",
    "OMEGA_MIN",
    "FigureResult",
    "Scenario",
    "SweepRow",
    "failure_storm_scenario",
    "fig1_dataflow",
    "figure2",
    "figure_storm",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "generate_report",
    "average_rows",
    "write_report",
    "make_performance",
    "make_profile",
    "resolve_jobs",
    "run_policy",
    "scaled_dataflow",
    "standard_spec",
    "sweep",
]
