"""Process-parallel sweep execution (S19).

Every figure in §8 is a (policy × scenario × seed) grid whose cells are
fully independent: each cell builds its own provider, RNG streams (all
derived from the scenario seed), and engine.  This module dispatches the
cells of :func:`repro.experiments.runner.sweep` across a
``ProcessPoolExecutor`` while guaranteeing the *exact* serial contract:

* rows come back in the same order the serial loop would produce them
  (scenario-major, policy-minor),
* every :class:`~repro.experiments.runner.SweepRow` is bit-identical to
  its serial counterpart (cells derive all randomness from the scenario
  seed, so placement on a worker cannot change results),
* ``jobs=1`` — or any failure to pickle the work items / start the pool —
  degrades gracefully to in-process execution.

The worker count resolves in priority order: explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then 1 (serial).  Work is
chunked across workers to amortize fork/IPC cost on short cells.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Optional, Sequence

from ..util import perf
from . import cache
from .runner import SweepRow
from .scenarios import Scenario

__all__ = ["resolve_jobs", "sweep", "DEFAULT_CHUNKS_PER_WORKER"]

#: Each worker receives its cells in roughly this many chunks, balancing
#: scheduling slack (stragglers) against per-chunk IPC overhead.
DEFAULT_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` env > 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_JOBS={raw!r}; running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _run_cell(cell: tuple[Scenario, str]) -> SweepRow:
    """Execute one (scenario, policy) grid cell (top-level: picklable).

    Routed through the result cache: workers inherit ``REPRO_CACHE*``
    environment settings, and the content-addressed entries are safe to
    share across concurrent processes (atomic same-key writes converge
    to identical bytes).
    """
    scenario, policy = cell
    return cache.run_cell(scenario, policy)


def _chunksize(n_cells: int, jobs: int) -> int:
    return max(1, n_cells // (jobs * DEFAULT_CHUNKS_PER_WORKER))


def sweep(
    scenarios: Iterable[Scenario],
    policies: Sequence[str],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[SweepRow]:
    """Run every policy on every scenario, fanning cells across processes.

    Results match :func:`repro.experiments.runner.sweep` exactly (same
    order, bit-identical rows).  Falls back to in-process execution when
    the resolved ``jobs`` is 1, the work items fail to pickle, or the
    process pool cannot be used on this platform.
    """
    cells = [(scenario, policy) for scenario in scenarios for policy in policies]
    perf.add("sweep.cells", len(cells))
    jobs = resolve_jobs(jobs)
    # A single-core host gains nothing from a process pool — the workers
    # would time-slice one CPU while paying fork + IPC on every chunk.
    jobs = min(jobs, os.cpu_count() or 1)
    if jobs <= 1 or len(cells) <= 1:
        return [_run_cell(c) for c in cells]

    try:
        pickle.dumps(cells)
    except Exception as exc:  # pickle raises a zoo of types
        warnings.warn(
            f"sweep cells are not picklable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [_run_cell(c) for c in cells]

    jobs = min(jobs, len(cells))
    if chunksize is None:
        chunksize = _chunksize(len(cells), jobs)
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # map preserves submission order, so rows come back exactly
            # as the serial scenario-major / policy-minor loop yields them.
            return list(pool.map(_run_cell, cells, chunksize=chunksize))
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [_run_cell(c) for c in cells]
