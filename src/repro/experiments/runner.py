"""Sweep runner: execute policy × scenario grids and collect rows.

All figure drivers are thin layers over :func:`sweep`, which runs every
(policy, scenario) combination through the managed engine and returns
one :class:`SweepRow` per run.

:func:`run_cells` is the reusable in-process cell entry point shared by
the sweep loop and the serve daemon (S29): one call per (scenario,
policy) cell through the warm/cold cache path, with the code
fingerprint hashed once per process (mtime-invalidated) instead of per
call — an always-on server answers every request without re-reading the
source tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..cloud.provider import CloudProvider
from ..core.policies import Policy
from ..engine.manager import RunManager, RunResult
from ..engine.tenants import FleetResult, TenantFleet, make_admission
from .scenarios import (
    MESSAGE_SIZE_MB,
    MultiTenantScenario,
    Scenario,
    make_performance,
)

__all__ = [
    "SweepRow",
    "average_rows",
    "build_fleet",
    "run_cells",
    "run_fleet",
    "sweep",
]


def run_cells(
    cells: Iterable[tuple[Scenario, str]],
) -> list[SweepRow]:
    """Evaluate (scenario, policy) cells in order through the cache.

    The in-process twin of one serve-daemon request: each cell is
    answered from the warm tier (serving LRU → disk entry → delta
    index) when possible and simulated otherwise.  The first call warms
    the process-wide code-fingerprint memo; subsequent calls pay a
    single TTL check instead of re-hashing ~60 source files.
    """
    from . import cache

    return [cache.run_cell(scenario, policy) for scenario, policy in cells]


@dataclass(frozen=True)
class SweepRow:
    """One completed run in a sweep grid."""

    policy: str
    rate: float
    rate_kind: str
    variability: str
    seed: int
    omega: float
    gamma: float
    cost: float
    theta: float
    constraint_met: bool
    vms_peak: int
    adaptations: int
    #: Reliability columns (S26); defaults keep cached pre-S26 rows valid.
    crashes: int = 0
    lost_messages: float = 0.0
    mean_recovery_s: Optional[float] = None
    #: Pricing model column (S28); the default keeps pre-S28 rows valid.
    billing_model: str = "on_demand_hourly"

    @classmethod
    def from_result(cls, scenario: Scenario, result: RunResult) -> "SweepRow":
        o = result.outcome
        return cls(
            policy=result.policy_name,
            rate=scenario.rate,
            rate_kind=scenario.rate_kind,
            variability=scenario.variability,
            seed=scenario.seed,
            omega=o.mean_throughput,
            gamma=o.mean_value,
            cost=o.total_cost,
            theta=o.theta,
            constraint_met=o.constraint_met,
            vms_peak=result.vms_peak,
            adaptations=result.adaptations,
            crashes=len(result.crashes),
            lost_messages=sum(c.lost_messages for c in result.crashes),
            mean_recovery_s=result.mean_recovery_s,
            billing_model=scenario.billing_model,
        )

    def as_tuple(self) -> tuple:
        return (
            self.policy,
            self.rate,
            self.variability,
            self.omega,
            self.gamma,
            self.cost,
            self.theta,
            self.constraint_met,
            self.crashes,
            self.lost_messages,
            self.mean_recovery_s,
        )


def sweep(
    scenarios: Iterable[Scenario],
    policies: Sequence[str],
    jobs: Optional[int] = None,
) -> list[SweepRow]:
    """Run every policy on every scenario (deterministic order).

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else 1)
    fans the independent grid cells across worker processes via
    :mod:`repro.experiments.parallel`; results are bit-identical to the
    serial loop, in the same scenario-major/policy-minor order.

    With ``REPRO_BATCH=1`` (or the CLI ``--batch`` flag) the grid runs
    through the structure-of-arrays batch engine instead
    (:mod:`repro.experiments.batch`) — one process advancing every
    cache-miss cell in lockstep, still bit-identical to this loop.
    Batching takes precedence over ``jobs``.

    Cells run through the content-addressed result cache
    (:mod:`repro.experiments.cache`) unless it is disabled, so repeated
    sweeps of unchanged configurations reuse their stored rows.
    """
    from .parallel import resolve_jobs

    from . import batch

    if batch.enabled():
        return batch.sweep(scenarios, policies)
    if resolve_jobs(jobs) > 1:
        from . import parallel

        return parallel.sweep(scenarios, policies, jobs=jobs)
    return run_cells(
        (scenario, policy)
        for scenario in scenarios
        for policy in policies
    )


def build_fleet(
    mt: MultiTenantScenario,
    policy_factory: Optional[Callable[[Scenario], Policy]] = None,
    macrostep: Optional[bool] = None,
) -> TenantFleet:
    """Construct the shared provider + per-tenant managers for a fleet.

    One :class:`CloudProvider` carries the whole fleet: finite per-class
    pools from ``mt.capacity_tightness``, the admission policy from
    ``mt.admission``, and one shared performance model.  Each tenant's
    :class:`RunManager` mirrors :func:`~.scenarios.run_policy`'s
    construction exactly — against a
    :class:`~repro.cloud.provider.TenantProvider` view instead of a
    private provider — so an uncontended fleet reproduces the isolated
    runs bit for bit.
    """
    scenarios = [mt.tenant_scenario(k) for k in range(mt.n_tenants)]
    catalog = scenarios[0].effective_catalog()
    admission = make_admission(mt.admission, mt.tenant_weights())
    provider = CloudProvider(
        catalog,
        performance=make_performance(mt.variability, seed=mt.seed),
        capacity=mt.capacity(catalog),
        admission=admission,
        # The single-run runaway cap, scaled to the fleet width.
        max_instances=max(1024, 16 * mt.n_tenants),
        # One price list for the whole fleet; every per-tenant meter
        # created by tenant_billing() shares this model.
        billing_model=scenarios[0].billing(),
    )
    managers = []
    for k, sc in enumerate(scenarios):
        policy = (
            policy_factory(sc)
            if policy_factory is not None
            else sc.policy(mt.policy)
        )
        managers.append(
            RunManager(
                dataflow=sc.dataflow,
                profiles=sc.profiles(),
                policy=policy,
                provider=provider.tenant_view(k),
                spec=sc.spec,
                tick=sc.tick,
                message_size_mb=MESSAGE_SIZE_MB,
                failures=sc.failures(),
                revocations=sc.revocations(),
                checkpoint_interval=sc.checkpoint_interval,
                restore_latency=sc.restore_latency,
                hedge_horizon=sc.hedge_horizon,
            )
        )
    return TenantFleet(
        managers,
        provider,
        rates=[sc.rate for sc in scenarios],
        admission_name=mt.admission,
        # Tenants with equal profiles evaluate rate_at once per tick.
        rate_keys=[(sc.rate_kind, sc.rate, sc.seed) for sc in scenarios],
        macrostep=macrostep,
    )


def run_fleet(
    mt: MultiTenantScenario,
    policy_factory: Optional[Callable[[Scenario], Policy]] = None,
    macrostep: Optional[bool] = None,
) -> FleetResult:
    """Build and run a multi-tenant fleet; returns its :class:`FleetResult`."""
    return build_fleet(
        mt, policy_factory=policy_factory, macrostep=macrostep
    ).run()


def average_rows(per_seed: Sequence[Sequence[SweepRow]]) -> list[SweepRow]:
    """Average sweep rows across seed replicas.

    Rows are matched by (policy, rate, rate_kind, variability); numeric
    fields are means, ``constraint_met`` requires every replica to pass
    (the conservative reading of the paper's necessary condition), and
    ``seed`` is set to −1 to mark an aggregate.

    Raises ``ValueError`` if the replicas do not cover identical grids.
    """
    if not per_seed:
        raise ValueError("need at least one replica")
    keys = [
        tuple((r.policy, r.rate, r.rate_kind, r.variability) for r in rows)
        for rows in per_seed
    ]
    if len(set(keys)) != 1:
        raise ValueError("replicas cover different (policy, scenario) grids")

    out: list[SweepRow] = []
    n = len(per_seed)
    for group in zip(*per_seed):
        first = group[0]
        recoveries = [
            r.mean_recovery_s for r in group if r.mean_recovery_s is not None
        ]
        out.append(
            SweepRow(
                policy=first.policy,
                rate=first.rate,
                rate_kind=first.rate_kind,
                variability=first.variability,
                seed=-1,
                omega=sum(r.omega for r in group) / n,
                gamma=sum(r.gamma for r in group) / n,
                cost=sum(r.cost for r in group) / n,
                theta=sum(r.theta for r in group) / n,
                constraint_met=all(r.constraint_met for r in group),
                vms_peak=max(r.vms_peak for r in group),
                adaptations=round(
                    sum(r.adaptations for r in group) / n
                ),
                crashes=round(sum(r.crashes for r in group) / n),
                lost_messages=sum(r.lost_messages for r in group) / n,
                mean_recovery_s=(
                    sum(recoveries) / len(recoveries) if recoveries else None
                ),
                billing_model=first.billing_model,
            )
        )
    return out
