"""The optimization objective (paper §6).

The user maximizes the *profit*

``Θ = Γ̄ − σ · μ``

subject to the throughput constraint ``Ω̄ ≥ Ω̂`` (checked with tolerance
ε).  ``σ`` is the user's value/dollar equivalence slope:

``σ = (MaxAppValue − MinAppValue) / (AcceptableCost@MaxVal − AcceptableCost@MinVal)``

where the value extremes come from the dataflow's alternates and the two
acceptable costs are user inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.graph import DynamicDataflow
from ..dataflow.metrics import MetricsTimeline

__all__ = ["ObjectiveSpec", "sigma_from_expectations", "EvaluationOutcome"]


def sigma_from_expectations(
    dataflow: DynamicDataflow,
    acceptable_cost_at_max_value: float,
    acceptable_cost_at_min_value: float,
) -> float:
    """Compute σ from the user's pricing expectations (paper §6).

    Parameters
    ----------
    dataflow:
        Supplies the min/max achievable normalized application value.
    acceptable_cost_at_max_value:
        Dollars the user accepts to pay for running at Γ = 1 over the
        optimization period.
    acceptable_cost_at_min_value:
        Dollars accepted at the minimum-value configuration.

    Notes
    -----
    When every PE has a single alternate, max and min values coincide and
    the paper's ratio degenerates; we then fall back to
    ``max_value / acceptable_cost_at_max_value`` so σ still prices value
    against the full acceptable budget.
    """
    if acceptable_cost_at_max_value <= 0:
        raise ValueError("acceptable cost at max value must be positive")
    if acceptable_cost_at_min_value < 0:
        raise ValueError("acceptable cost at min value must be non-negative")
    if acceptable_cost_at_max_value < acceptable_cost_at_min_value:
        raise ValueError(
            "cost at max value must be ≥ cost at min value "
            "(more value cannot be cheaper)"
        )
    min_value, max_value = dataflow.value_bounds()
    value_span = max_value - min_value
    cost_span = acceptable_cost_at_max_value - acceptable_cost_at_min_value
    if value_span <= 1e-12 or cost_span <= 1e-12:
        return max_value / acceptable_cost_at_max_value
    return value_span / cost_span


@dataclass(frozen=True)
class ObjectiveSpec:
    """User-facing optimization contract for one period.

    Parameters
    ----------
    omega_min:
        Ω̂ — required average relative throughput (paper uses 0.7).
    epsilon:
        Constraint tolerance ε (paper uses 0.05).
    sigma:
        Value/dollar equivalence slope.
    period:
        Optimization period length T in seconds.
    interval:
        Length of one decision interval in seconds.
    """

    omega_min: float = 0.7
    epsilon: float = 0.05
    sigma: float = 0.01
    period: float = 6 * 3600.0
    interval: float = 60.0

    def __post_init__(self) -> None:
        if not 0 < self.omega_min <= 1:
            raise ValueError("omega_min must be in (0, 1]")
        if not 0 <= self.epsilon < self.omega_min:
            raise ValueError("epsilon must be in [0, omega_min)")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.period <= 0 or self.interval <= 0:
            raise ValueError("period and interval must be positive")
        if self.interval > self.period:
            raise ValueError("interval cannot exceed the period")

    @property
    def n_intervals(self) -> int:
        """Number of decision intervals in the period."""
        return max(1, int(round(self.period / self.interval)))

    def theta(self, mean_value: float, total_cost: float) -> float:
        """Θ = Γ̄ − σ·μ."""
        return mean_value - self.sigma * total_cost

    def satisfied(self, mean_throughput: float) -> bool:
        """Whether Ω̄ meets the constraint within tolerance."""
        return mean_throughput >= self.omega_min - self.epsilon


@dataclass(frozen=True)
class EvaluationOutcome:
    """Final verdict for one run, following the paper's §8.2 comparison
    protocol: first check the Ω constraint (necessary), then compare Θ."""

    mean_value: float
    mean_throughput: float
    total_cost: float
    theta: float
    constraint_met: bool

    @classmethod
    def from_timeline(
        cls, timeline: MetricsTimeline, spec: ObjectiveSpec
    ) -> "EvaluationOutcome":
        gamma = timeline.mean_value
        omega = timeline.mean_throughput
        cost = timeline.total_cost
        return cls(
            mean_value=gamma,
            mean_throughput=omega,
            total_cost=cost,
            theta=spec.theta(gamma, cost),
            constraint_met=spec.satisfied(omega),
        )

    def better_than(self, other: "EvaluationOutcome") -> bool:
        """Paper §8.2 ordering: constraint satisfaction first, then Θ."""
        if self.constraint_met != other.constraint_met:
            return self.constraint_met
        return self.theta > other.theta

    def __str__(self) -> str:
        check = "✓" if self.constraint_met else "✗"
        return (
            f"Θ={self.theta:+.4f}  Γ̄={self.mean_value:.3f}  "
            f"Ω̄={self.mean_throughput:.3f}{check}  μ=${self.total_cost:.2f}"
        )
