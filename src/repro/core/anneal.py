"""Anytime simulated-annealing deployment search (S28).

A seeded, budgeted local search over (alternate selection × VM-class
multiset) — the optimizer baseline ROADMAP calls for on graphs where
:class:`~repro.core.bruteforce.BruteForceDeployment` is impractical.  The
search *shares the brute force's demand model, packing feasibility test
and Θ formula by construction* (it delegates to a `BruteForceDeployment`
instance for ``_demands``/``_try_pack``): any configuration annealing can
reach is one the exhaustive search scores identically, so on graphs small
enough to solve exactly, annealing can never exceed the optimum — the
S23 differential harness pins this.

Anytime contract: the search runs until either ``max_evals`` energy
evaluations or the optional ``time_budget_s`` wall-clock budget is
spent, and always returns the best feasible plan seen so far.  With
``max_evals = 0`` it returns the greedy seed plan (the ``global``
:class:`~repro.core.deployment.InitialDeployment`) unchanged.  Fixed
``seed`` + ``max_evals`` (and no wall-clock budget) make the returned
plan bit-reproducible.

Pricing awareness: by default the energy prices a static plan at
``hourly list price × period_hours`` exactly like the brute force; with
``billing`` set to a :class:`~repro.cloud.billing.BillingModel`, plans
are priced by the model's ``lifetime_cost`` instead, so the search
optimizes Θ under the scenario's actual pricing regime.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..cloud.billing import BillingModel
from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from ..sim.rng import RandomStreams
from .bruteforce import BruteForceConfig, BruteForceDeployment
from .deployment import DeploymentConfig, InitialDeployment
from .state import ClusterView, DeploymentPlan

__all__ = ["AnnealConfig", "AnnealingDeployment"]


@dataclass(frozen=True)
class AnnealConfig:
    """Search parameters.

    Parameters
    ----------
    omega_min / sigma / period_hours:
        The objective, matching :class:`BruteForceConfig` semantics.
    max_evals:
        Energy-evaluation budget; 0 returns the greedy seed plan.
    seed:
        RNG seed for the proposal stream (bit-reproducible plans).
    initial_temp / final_temp:
        Geometric cooling schedule endpoints, in Θ units.
    time_budget_s:
        Optional anytime wall-clock cap (checked between evaluations);
        ``None`` disables it and keeps the search deterministic.
    billing:
        Optional pricing model for the plan cost; ``None`` prices at
        list hourly rate × ``period_hours`` (the brute-force metric).
    """

    omega_min: float = 0.7
    sigma: float = 0.01
    period_hours: float = 6.0
    max_evals: int = 1500
    seed: int = 0
    initial_temp: float = 0.05
    final_temp: float = 0.001
    time_budget_s: Optional[float] = None
    billing: Optional[BillingModel] = None

    def __post_init__(self) -> None:
        if not 0 < self.omega_min <= 1:
            raise ValueError("omega_min must be in (0, 1]")
        if self.sigma < 0:
            raise ValueError("sigma must be ≥ 0")
        if self.period_hours <= 0:
            raise ValueError("period_hours must be positive")
        if self.max_evals < 0:
            raise ValueError("max_evals must be ≥ 0")
        if self.initial_temp <= 0 or self.final_temp <= 0:
            raise ValueError("temperatures must be positive")


class AnnealingDeployment:
    """Seeded anytime simulated annealing over deployments."""

    def __init__(
        self,
        dataflow: DynamicDataflow,
        catalog: list[VMClass],
        config: Optional[AnnealConfig] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        self.dataflow = dataflow
        self.catalog = sorted(catalog)
        self.config = config or AnnealConfig()
        # Delegate demand sizing and packing feasibility to the brute
        # force so both searches score a configuration identically.
        self._bf = BruteForceDeployment(
            dataflow,
            self.catalog,
            BruteForceConfig(
                omega_min=self.config.omega_min,
                sigma=self.config.sigma,
                period_hours=self.config.period_hours,
            ),
        )
        self._alt_names = {
            pe.name: [a.name for a in pe.alternates] for pe in dataflow.pes
        }
        self._flex_pes = [
            name for name, alts in self._alt_names.items() if len(alts) > 1
        ]
        self._evaluations = 0
        self._best_theta = -math.inf

    # -- public ---------------------------------------------------------------

    @property
    def evaluations(self) -> int:
        """Energy evaluations spent by the last :meth:`plan` call."""
        return self._evaluations

    @property
    def best_theta(self) -> float:
        """Static Θ of the plan the last :meth:`plan` call returned."""
        return self._best_theta

    def plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        """Anneal from the greedy seed; return the best plan found."""
        cfg = self.config
        rates = dict(input_rates)
        seed_plan = InitialDeployment(
            self.dataflow,
            self.catalog,
            DeploymentConfig(strategy="global", omega_min=cfg.omega_min),
        ).plan(rates)
        self._evaluations = 0
        self._best_theta = -math.inf
        if cfg.max_evals <= 0:
            return seed_plan

        counts = [0] * len(self.catalog)
        index = {c.name: i for i, c in enumerate(self.catalog)}
        for vm in seed_plan.cluster.vms:
            counts[index[vm.vm_class.name]] += 1
        selection = dict(seed_plan.selection)

        # The greedy packing and the brute-force packing differ, so the
        # seed multiset may not first-fit; grow it until it does.
        cluster, theta = self._evaluate(selection, counts, rates)
        repairs = 0
        while cluster is None and repairs < 64:
            counts[-1] += 1
            repairs += 1
            cluster, theta = self._evaluate(selection, counts, rates)
        if cluster is None:
            return seed_plan  # pathological catalog; keep the greedy plan

        rng = RandomStreams(cfg.seed).get("anneal")
        started = time.monotonic() if cfg.time_budget_s is not None else None
        best_theta, best_cluster, best_selection = theta, cluster, dict(selection)
        current_theta = theta

        while self._evaluations < cfg.max_evals:
            if (
                started is not None
                and time.monotonic() - started > cfg.time_budget_s
            ):
                break
            frac = self._evaluations / max(1, cfg.max_evals)
            temp = cfg.initial_temp * (cfg.final_temp / cfg.initial_temp) ** frac
            cand_sel, cand_counts = self._propose(rng, selection, counts)
            cand_cluster, cand_theta = self._evaluate(
                cand_sel, cand_counts, rates
            )
            if cand_cluster is None:
                continue  # infeasible: reject, budget still consumed
            accept = cand_theta >= current_theta or float(
                rng.random()
            ) < math.exp((cand_theta - current_theta) / temp)
            if accept:
                selection, counts, current_theta = (
                    cand_sel,
                    cand_counts,
                    cand_theta,
                )
                if cand_theta > best_theta:
                    best_theta = cand_theta
                    best_cluster = cand_cluster
                    best_selection = dict(cand_sel)

        self._best_theta = best_theta
        return DeploymentPlan(selection=best_selection, cluster=best_cluster)

    # -- energy ---------------------------------------------------------------

    def _evaluate(
        self,
        selection: Mapping[str, str],
        counts: list[int],
        rates: Mapping[str, float],
    ) -> tuple[Optional[ClusterView], float]:
        """(packed cluster, Θ) of one configuration; (None, −inf) if
        infeasible under the brute-force packing."""
        self._evaluations += 1
        demands = self._bf._demands(selection, rates)
        cluster = self._bf._try_pack(list(counts), demands)
        if cluster is None:
            return None, -math.inf
        gamma = self.dataflow.application_value(selection)
        return cluster, gamma - self.config.sigma * self._period_cost(cluster)

    def _period_cost(self, cluster: ClusterView) -> float:
        cfg = self.config
        if cfg.billing is None:
            # Identical to the brute force's static-plan metric.
            return cluster.total_hourly_price() * cfg.period_hours
        duration_s = cfg.period_hours * 3600.0
        return sum(
            cfg.billing.lifetime_cost(vm.vm_class, duration_s)
            for vm in cluster.vms
        )

    # -- proposals -------------------------------------------------------------

    def _propose(
        self,
        rng: np.random.Generator,
        selection: Mapping[str, str],
        counts: list[int],
    ) -> tuple[dict[str, str], list[int]]:
        """One neighbour: flip an alternate, or add/remove/swap a VM."""
        sel = dict(selection)
        cnt = list(counts)
        move = int(rng.integers(4))
        if move == 0 and self._flex_pes:
            pe = self._flex_pes[int(rng.integers(len(self._flex_pes)))]
            options = [a for a in self._alt_names[pe] if a != sel[pe]]
            sel[pe] = options[int(rng.integers(len(options)))]
            return sel, cnt
        if move == 2:
            nonzero = [i for i, n in enumerate(cnt) if n > 0]
            if nonzero and sum(cnt) > 1:
                cnt[nonzero[int(rng.integers(len(nonzero)))]] -= 1
                return sel, cnt
        if move == 3:
            nonzero = [i for i, n in enumerate(cnt) if n > 0]
            if nonzero:
                cnt[nonzero[int(rng.integers(len(nonzero)))]] -= 1
                cnt[int(rng.integers(len(cnt)))] += 1
                return sel, cnt
        # move == 1, or the chosen move had no legal target: add a VM.
        cnt[int(rng.integers(len(cnt)))] += 1
        return sel, cnt
