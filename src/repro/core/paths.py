"""Dynamic paths (paper §9 future work).

The paper proposes extending dynamic *tasks* to dynamic *paths*:
"alternate implementations at coarser granularities, such as a subset of
the application graph".  This module implements deployment-time path
selection:

* a :class:`PathVariant` is a complete dataflow graph realizing the same
  logical application (same input/output contract) with a user-assigned
  relative value — e.g. a three-stage enrichment path vs. a direct
  two-stage path that skips enrichment at lower value;
* a :class:`DynamicPathSet` holds the variants;
* :class:`PathSelector` plans every variant with the regular Algorithm 1
  deployment, predicts each plan's objective
  ``Θ = γ_path · Γ(selection) − σ · μ̂`` (the variant's value scales the
  alternates' application value; ``μ̂`` is the fleet's predicted cost
  over the optimization period), and picks the best variant that can
  satisfy the throughput constraint.

Variants still contain per-PE alternates, so path selection composes
with the paper's per-task dynamism: the selector optimizes over
*variant × alternate-selection × packing* jointly, reusing the existing
heuristics per variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from .deployment import DeploymentConfig, InitialDeployment
from .objective import ObjectiveSpec
from .state import DeploymentPlan

__all__ = ["PathVariant", "DynamicPathSet", "PathChoice", "PathSelector"]


@dataclass(frozen=True)
class PathVariant:
    """One realization of the logical application.

    Parameters
    ----------
    name:
        Variant identifier, unique within its set.
    dataflow:
        The complete graph of this variant.
    value:
        Relative value of the *path* in ``(0, 1]`` — the quality ceiling
        of this realization (e.g. 1.0 for the full enrichment path, 0.8
        for the shortcut).  Multiplies the variant's application value Γ.
    """

    name: str
    dataflow: DynamicDataflow
    value: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variant name must be non-empty")
        if not 0 < self.value <= 1:
            raise ValueError(f"variant {self.name!r}: value must be in (0, 1]")


class DynamicPathSet:
    """A family of path variants sharing the same input contract.

    All variants must have the same *number* of input PEs; input rates
    are mapped positionally so workloads defined for one variant apply to
    all.
    """

    def __init__(self, variants: Sequence[PathVariant]) -> None:
        if not variants:
            raise ValueError("need at least one path variant")
        names = [v.name for v in variants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")
        arity = len(variants[0].dataflow.inputs)
        for v in variants:
            if len(v.dataflow.inputs) != arity:
                raise ValueError(
                    f"variant {v.name!r} has {len(v.dataflow.inputs)} inputs, "
                    f"expected {arity}"
                )
        self._variants = tuple(variants)

    @property
    def variants(self) -> tuple[PathVariant, ...]:
        return self._variants

    def __len__(self) -> int:
        return len(self._variants)

    def __getitem__(self, name: str) -> PathVariant:
        for v in self._variants:
            if v.name == name:
                return v
        raise KeyError(
            f"no variant {name!r}; known: {[v.name for v in self._variants]}"
        )

    def map_rates(
        self, variant: PathVariant, input_rates: Mapping[str, float]
    ) -> dict[str, float]:
        """Map positional input rates from the first variant onto another."""
        reference = self._variants[0].dataflow.inputs
        values = [input_rates[name] for name in reference]
        return dict(zip(variant.dataflow.inputs, values))


@dataclass(frozen=True)
class PathChoice:
    """The selector's verdict for one variant."""

    variant: PathVariant
    plan: DeploymentPlan
    #: Path-scaled application value γ_path · Γ(selection).
    predicted_value: float
    #: Predicted dollar cost over the optimization period.
    predicted_cost: float
    #: Predicted objective Θ.
    predicted_theta: float


class PathSelector:
    """Deployment-time selection over a :class:`DynamicPathSet`.

    Parameters
    ----------
    paths:
        The variant family.
    catalog:
        Provider VM classes.
    spec:
        Objective parameters (Ω̂, σ, period).
    strategy / dynamism:
        Passed through to each variant's Algorithm 1 deployment.
    """

    def __init__(
        self,
        paths: DynamicPathSet,
        catalog: list[VMClass],
        spec: ObjectiveSpec,
        strategy: str = "global",
        dynamism: bool = True,
    ) -> None:
        self.paths = paths
        self.catalog = catalog
        self.spec = spec
        self.config = DeploymentConfig(
            strategy=strategy,  # type: ignore[arg-type]
            omega_min=spec.omega_min,
            dynamism=dynamism,
        )

    def evaluate(
        self, variant: PathVariant, input_rates: Mapping[str, float]
    ) -> PathChoice:
        """Plan one variant and predict its objective."""
        rates = self.paths.map_rates(variant, input_rates)
        deployment = InitialDeployment(variant.dataflow, self.catalog, self.config)
        plan = deployment.plan(rates)
        gamma = variant.value * variant.dataflow.application_value(plan.selection)
        hours = self.spec.period / 3600.0
        cost = plan.cluster.total_hourly_price() * hours
        return PathChoice(
            variant=variant,
            plan=plan,
            predicted_value=gamma,
            predicted_cost=cost,
            predicted_theta=gamma - self.spec.sigma * cost,
        )

    def rank(
        self, input_rates: Mapping[str, float]
    ) -> list[PathChoice]:
        """All variants, best predicted Θ first."""
        choices = [
            self.evaluate(v, input_rates) for v in self.paths.variants
        ]
        choices.sort(key=lambda c: c.predicted_theta, reverse=True)
        return choices

    def select(self, input_rates: Mapping[str, float]) -> PathChoice:
        """The Θ-best variant for the estimated input rates."""
        return self.rank(input_rates)[0]

    def plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        """Policy-compatible entry point: the chosen variant's plan.

        Note the plan references the chosen variant's dataflow; run it
        with that dataflow (``select(...).variant.dataflow``).
        """
        return self.select(input_rates).plan
