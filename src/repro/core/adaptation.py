"""Runtime adaptation heuristics (paper §7.2, Algorithm 2).

Runs at interval boundaries on the monitored :class:`~repro.core.state.Snapshot`
and produces a new :class:`~repro.core.state.DeploymentPlan`.  Two stages,
deliberately run at different cadences to balance application value against
resource cost:

* **Alternate selection** (every ``alternate_period`` intervals): for every
  PE, compute the resources each alternate would need at the observed data
  rate *and the monitored VM performance*.  If the application is
  under-provisioned (Ω below Ω̂ − ε) the feasible set contains alternates
  needing *no more* resources than the active one (trading value for
  throughput); if over-provisioned (Ω above Ω̂ + ε) it contains alternates
  needing *at least* as much (buying value with the slack).  The feasible
  set is ranked by value/cost — cost per the local/global strategy — and
  the first alternate that fits the available resources wins.

* **Resource re-deployment** (every ``resource_period`` intervals): if the
  average relative throughput trails Ω̂, incrementally allocate cores to
  the current bottleneck exactly like the initial deployment, but sized
  with *monitored* CPU coefficients and observed rates, preferring free
  (already-paid) cores before provisioning.  The local strategy always
  provisions the largest VM class and terminates idle VMs immediately; the
  global strategy provisions the best-fit class for the remaining deficit
  and keeps idle VMs parked while their already-billed hour lasts, which
  avoids the pay-again penalty when a scale-in is quickly reversed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from ..dataflow.metrics import constrained_rates, relative_application_throughput
from ..dataflow.patterns import SplitPattern
from ..dataflow.pe import Alternate
from ..obs import collector as _trace
from ..validate import invariants as _validate
from .deployment import Strategy
from .state import ClusterView, DeploymentPlan, Snapshot

__all__ = ["AdaptationConfig", "RuntimeAdaptation", "HedgedAdaptation"]

_EPS = 1e-9


@dataclass(frozen=True)
class AdaptationConfig:
    """Tunables of the runtime adaptation heuristic.

    Parameters
    ----------
    strategy:
        ``"local"`` or ``"global"``.
    omega_min / epsilon:
        Throughput constraint Ω̂ and tolerance ε.
    dynamism:
        ``False`` disables the alternate-selection stage (baselines).
    alternate_period / resource_period:
        Stage cadences, in intervals (paper: the two stages run at
        different periods; defaults 2 and 1).
    interval:
        Interval length in seconds (for backlog-drain sizing).
    drain_intervals:
        Horizon, in intervals, over which accumulated backlog should be
        drained; inflates the capacity demand of backlogged PEs.  The
        drain demand is capped so a deep backlog requests at most
        ``burst_factor ×`` the ideal arrival rate — provisioning a burst
        fleet for a transient queue wastes whole billed hours.
    burst_factor:
        Cap on total demanded capacity, as a multiple of the ideal
        arrival rate.
    scale_in_margin:
        Extra throughput headroom (above Ω̂ + ε) required before cores are
        released, providing hysteresis against oscillation.
    max_cores:
        Safety cap on total allocated cores.
    """

    strategy: Strategy = "local"
    omega_min: float = 0.7
    epsilon: float = 0.05
    dynamism: bool = True
    alternate_period: int = 2
    resource_period: int = 1
    interval: float = 60.0
    drain_intervals: float = 6.0
    burst_factor: float = 1.25
    scale_in_margin: float = 0.05
    max_cores: int = 4096

    def __post_init__(self) -> None:
        if self.strategy not in ("local", "global"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if not 0 < self.omega_min <= 1:
            raise ValueError("omega_min must be in (0, 1]")
        if self.epsilon < 0 or self.scale_in_margin < 0:
            raise ValueError("epsilon and scale_in_margin must be ≥ 0")
        if self.alternate_period < 1 or self.resource_period < 1:
            raise ValueError("stage periods must be ≥ 1 interval")
        if self.interval <= 0 or self.drain_intervals <= 0:
            raise ValueError("interval and drain_intervals must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be ≥ 1")


class RuntimeAdaptation:
    """Algorithm 2 against monitored state.

    Parameters
    ----------
    dataflow:
        The running dynamic dataflow.
    catalog:
        Provider VM classes.
    config:
        Heuristic tunables.
    """

    def __init__(
        self,
        dataflow: DynamicDataflow,
        catalog: list[VMClass],
        config: Optional[AdaptationConfig] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        self.dataflow = dataflow
        self.catalog = sorted(catalog)
        self.config = config or AdaptationConfig()
        # -- decision fast-path caches (behaviour-preserving memoization).
        # The topology is immutable, so anything keyed purely on the graph
        # (successor closures) or on (selection, direction) pairs (ranking
        # costs, candidate orders) can be computed once and replayed.
        self._pe_order: tuple[str, ...] = tuple(dataflow.pe_names)
        #: selection-key → (ranking_costs, {pe: under-order}, {pe: over-order})
        self._rank_cache: dict[tuple, tuple] = {}
        #: pe name → transitive successors in _downstream_units visit order
        self._succ_closure: dict[str, tuple[str, ...]] = {}
        #: ascending (capacity, class) pairs for best-fit provisioning
        self._provision_order = [
            (klass.total_capacity, klass) for klass in self.catalog
        ]
        self._prev_snapshot: Optional[Snapshot] = None
        self._prev_input_demand: dict[str, float] = {}

    # -- public ------------------------------------------------------------------

    def adapt(self, snapshot: Snapshot, interval_index: int) -> DeploymentPlan:
        """Produce the target plan for the next interval.

        ``interval_index`` is the 1-based index of the completed interval;
        it gates the two stage cadences.
        """
        cfg = self.config
        selection = dict(snapshot.selection)
        cluster = snapshot.cluster.clone()
        tracing = _trace.enabled()
        candidates: Optional[list[dict]] = [] if tracing else None

        alternate_stage = (
            cfg.dynamism and interval_index % cfg.alternate_period == 0
        )
        resource_stage = interval_index % cfg.resource_period == 0

        if alternate_stage:
            selection = self._alternate_stage(
                snapshot, cluster, selection, candidates
            )

        if resource_stage:
            self._resource_stage(snapshot, cluster, selection)

        if tracing:
            _trace.emit(
                "adaptation_decision",
                t=snapshot.time,
                interval=interval_index,
                strategy=cfg.strategy,
                omega_last=snapshot.omega_last,
                omega_average=snapshot.omega_average,
                gamma=self.dataflow.application_value(snapshot.selection),
                mu=snapshot.cumulative_cost,
                alternate_stage=alternate_stage,
                resource_stage=resource_stage,
                candidates=candidates or [],
                switched=sorted(
                    n
                    for n, alt in selection.items()
                    if snapshot.selection.get(n) != alt
                ),
            )

        plan = DeploymentPlan(selection=selection, cluster=cluster)
        if _validate.enabled():
            _validate.checker().check_decision(self, snapshot, plan)
        return plan

    # -- stage 1: alternate selection ------------------------------------------------

    def _alternate_stage(
        self,
        snapshot: Snapshot,
        cluster: ClusterView,
        selection: dict[str, str],
        candidates: Optional[list[dict]] = None,
    ) -> dict[str, str]:
        cfg = self.config
        df = self.dataflow
        omega = snapshot.omega_last
        under = omega <= cfg.omega_min - cfg.epsilon
        over = omega >= cfg.omega_min + cfg.epsilon
        if not under and not over:
            return selection

        ranking_costs, under_orders, over_orders = self._rank_entry(selection)
        # The alternate stage never reallocates cores, so one aggregation
        # pass over the fleet serves every PE (and _downstream_units).
        units = cluster.pe_units_map()

        for name in df.topological_order():
            p = df[name]
            if len(p) == 1:
                continue
            arrival = self._demand_rate(snapshot, name)
            active = p.alternate(selection[name])
            available = units.get(name, 0.0)
            needed_active = arrival * active.cost

            # Candidates come pre-sorted by the direction's ranking key
            # (value density under; value, then density, over — see
            # _rank_entry); filtering preserves that order, so this equals
            # the old build-then-sort with the per-call sort hoisted out.
            order = under_orders[name] if under else over_orders[name]
            feasible: list[Alternate] = []
            for alt in order:
                needed = arrival * alt.cost
                if under and needed <= needed_active + _EPS:
                    feasible.append(alt)
                elif over and needed >= needed_active - _EPS:
                    feasible.append(alt)
            if not feasible:
                continue

            chosen: Optional[str] = None
            for alt in feasible:
                if under:
                    # A downgrade needs no headroom check: it demands no
                    # more than the active alternate by construction.
                    fits = True
                else:
                    # An upgrade must fit what the PE already holds.
                    fits = arrival * alt.cost <= available + _EPS
                    if fits and self.config.strategy == "global":
                        # Global additionally prices the upgrade with its
                        # downstream cost against the PE's and its
                        # successors' resources — a deliberately
                        # conservative over-estimate that makes global
                        # "avoid re-deployment to increase the application
                        # value" at low rates (paper §8.2).
                        pool = available + self._downstream_units(
                            units, name
                        )
                        fits = (
                            arrival * ranking_costs[name][alt.name]
                            <= pool + _EPS
                        )
                if fits:
                    chosen = alt.name
                    if alt.name != active.name:
                        selection[name] = alt.name
                    break
            if candidates is not None:
                candidates.append(
                    {
                        "pe": name,
                        "active": active.name,
                        "considered": [a.name for a in feasible],
                        "chosen": chosen,
                        "direction": "under" if under else "over",
                    }
                )
        return selection

    def _downstream_units(
        self, units: Mapping[str, float], pe_name: str
    ) -> float:
        """Units held by every transitive successor of ``pe_name``.

        ``units`` is a :meth:`~repro.core.state.ClusterView.pe_units_map`
        aggregate.  The traversal order over the (immutable) topology is
        memoized per PE; summing in that recorded visit order keeps the
        float result bit-identical to the original walk.
        """
        order = self._succ_closure.get(pe_name)
        if order is None:
            seen: set[str] = set()
            visit: list[str] = []
            frontier = list(self.dataflow.successors(pe_name))
            while frontier:
                n = frontier.pop()
                if n in seen:
                    continue
                seen.add(n)
                visit.append(n)
                frontier.extend(self.dataflow.successors(n))
            order = self._succ_closure[pe_name] = tuple(visit)
        total = 0.0
        for n in order:
            total += units.get(n, 0.0)
        return total

    def _rank_entry(
        self, selection: Mapping[str, str]
    ) -> tuple[dict, dict, dict]:
        """Memoized (ranking costs, under-orders, over-orders) per selection.

        Local ranking costs ignore the selection entirely (one cache
        entry); global costs depend on it, so the key is the active
        alternate of every PE.  The per-PE candidate orders replay the
        exact sort keys the alternate stage used to apply per call; each
        key ends in the (unique) alternate name, a strict total order, so
        pre-sorting all alternates and filtering later is equivalent to
        sorting each feasible subset.
        """
        if self.config.strategy == "local":
            key: tuple = ()
        else:
            key = tuple(selection[n] for n in self._pe_order)
        entry = self._rank_cache.get(key)
        if entry is None:
            if len(self._rank_cache) > 256:
                self._rank_cache.clear()
            costs = self._ranking_costs(selection)
            under_orders: dict[str, tuple[Alternate, ...]] = {}
            over_orders: dict[str, tuple[Alternate, ...]] = {}
            for p in self.dataflow.pes:
                if len(p) == 1:
                    continue
                rc = costs[p.name]
                under_orders[p.name] = tuple(
                    sorted(
                        p.alternates,
                        key=lambda a: (
                            p.relative_value(a) / rc[a.name],
                            a.name,
                        ),
                        reverse=True,
                    )
                )
                over_orders[p.name] = tuple(
                    sorted(
                        p.alternates,
                        key=lambda a: (
                            p.relative_value(a),
                            p.relative_value(a) / rc[a.name],
                            a.name,
                        ),
                        reverse=True,
                    )
                )
            entry = (costs, under_orders, over_orders)
            self._rank_cache[key] = entry
        return entry

    def _ranking_costs(
        self, selection: Mapping[str, str]
    ) -> dict[str, dict[str, float]]:
        """Per-PE, per-alternate ranking cost (Table 1's GetCostOfAlternate).

        Local: the alternate's own cost.  Global: its downstream cost given
        the rest of the graph keeps the current selection.
        """
        df = self.dataflow
        out: dict[str, dict[str, float]] = {}
        if self.config.strategy == "local":
            for p in df.pes:
                out[p.name] = {a.name: a.cost for a in p.alternates}
            return out
        base_dc = df.downstream_costs(selection)
        for p in df.pes:
            succ = df.successors(p.name)
            weight = 1.0
            if succ and df.split_pattern(p.name) is not SplitPattern.AND_SPLIT:
                weight = 1.0 / len(succ)
            tail = sum(base_dc[m] for m in succ)
            out[p.name] = {
                a.name: a.cost + a.selectivity * weight * tail
                for a in p.alternates
            }
        return out

    # -- stage 2: resource re-deployment ---------------------------------------------

    def _resource_stage(
        self,
        snapshot: Snapshot,
        cluster: ClusterView,
        selection: Mapping[str, str],
    ) -> None:
        cfg = self.config
        df = self.dataflow
        input_rates = self._input_demand(snapshot)

        caps = cluster.capacities(df, selection)
        flow = constrained_rates(df, selection, input_rates, caps)
        omega_pred = relative_application_throughput(df, flow)
        behind = snapshot.omega_average < cfg.omega_min - _EPS

        if behind or omega_pred < cfg.omega_min - _EPS:
            self._scale_out(snapshot, cluster, selection, input_rates)
        elif (
            omega_pred >= cfg.omega_min + cfg.epsilon + cfg.scale_in_margin
            and snapshot.omega_average >= cfg.omega_min
        ):
            # Release only once the period's running average is safe —
            # hysteresis against scale-out/scale-in thrash under waves.
            self._scale_in(cluster, selection, input_rates)

        self._retire_idle_vms(cluster)

    def _scale_out(
        self,
        snapshot: Snapshot,
        cluster: ClusterView,
        selection: Mapping[str, str],
        input_rates: Mapping[str, float],
    ) -> None:
        cfg = self.config
        df = self.dataflow
        target = min(1.0, cfg.omega_min + cfg.epsilon / 2)

        # A PE is a bottleneck if it cannot serve the constraint's share
        # of its *ideal* arrivals plus its backlog-drain rate.  (Sizing
        # against throttled arrivals would compound Ω̂ per stage and
        # converge to Ω̂^depth instead of Ω̂.)  The required capacities
        # depend only on the snapshot and selection, both fixed across the
        # add-one-core iterations, so they are computed once.
        required_by_pe: list[tuple[str, float]] = []
        ideal = df.ideal_rates(selection, input_rates)
        for name in df.forward_bfs_order():
            backlog = float(snapshot.backlogs.get(name, 0.0))
            drain = backlog / (cfg.drain_intervals * cfg.interval)
            required = min(
                cfg.omega_min * ideal[name][0] + drain,
                cfg.burst_factor * max(ideal[name][0], _EPS),
            )
            if required > _EPS:
                required_by_pe.append((name, required))

        while True:
            caps = cluster.capacities(df, selection)
            flow = constrained_rates(df, selection, input_rates, caps)
            omega = relative_application_throughput(df, flow)

            bottleneck = None
            worst = 1.0 - 1e-6
            for name, required in required_by_pe:
                ratio = caps.get(name, 0.0) / required
                if ratio < worst:
                    bottleneck = name
                    worst = ratio
            if bottleneck is None:
                if omega >= target - _EPS:
                    break
                # Ω trails the target yet no PE is saturated (e.g. input
                # rates dipped): nothing a core can fix right now.
                break
            if cluster.total_used_cores() >= cfg.max_cores:
                break
            self._add_core(cluster, bottleneck, snapshot, selection)

    def _add_core(
        self,
        cluster: ClusterView,
        pe_name: str,
        snapshot: Snapshot,
        selection: Mapping[str, str],
    ) -> None:
        """Grant one more core to ``pe_name``.

        Free (already-paid) cores are used before provisioning.  Among
        free cores the preference order keeps traffic local: VMs already
        hosting this PE, then VMs hosting a dataflow *neighbour*
        (collocation avoids network transfer, §5), then the fastest
        remaining core.  New VMs follow the strategy's class policy.
        """
        neighbours = set(self.dataflow.successors(pe_name)) | set(
            self.dataflow.predecessors(pe_name)
        )
        free = sorted(
            cluster.with_free_cores(),
            key=lambda vm: (
                pe_name not in vm.allocations,
                not any(n in vm.allocations for n in neighbours),
                -vm.core_units(),
            ),
        )
        if free:
            free[0].allocate(pe_name, 1)
            return
        cluster.new_vm(
            self._provision_class(cluster, pe_name, snapshot, selection)
        ).allocate(pe_name, 1)

    def _provision_class(
        self,
        cluster: ClusterView,
        pe_name: str,
        snapshot: Snapshot,
        selection: Mapping[str, str],
    ) -> VMClass:
        """Local: always the largest class.  Global: cheapest class that
        covers the PE's remaining unit deficit (best fit)."""
        if self.config.strategy == "local":
            return self.catalog[-1]
        cost = self.dataflow.active_alternate(selection, pe_name).cost
        demand_units = self._demand_rate(snapshot, pe_name) * cost
        deficit = max(demand_units - cluster.pe_units(pe_name), 0.0)
        # _provision_order pairs ascending capacities with their classes,
        # hoisting the per-call total_capacity recomputation.
        for capacity, klass in self._provision_order:
            if capacity >= deficit - _EPS:
                return klass
        return self.catalog[-1]

    def _scale_in(
        self,
        cluster: ClusterView,
        selection: Mapping[str, str],
        input_rates: Mapping[str, float],
    ) -> None:
        """Release cores while the predicted throughput keeps clearing
        Ω̂ + ε (with hysteresis margin already verified by the caller)."""
        cfg = self.config
        df = self.dataflow
        floor = cfg.omega_min + cfg.epsilon
        while True:
            released = False
            # Prefer draining the most lightly used VM so it can retire.
            for vm in sorted(cluster.vms, key=lambda v: v.used_cores):
                if vm.idle:
                    continue
                pe_name = max(
                    vm.allocations, key=lambda p: vm.allocations[p]
                )
                if cluster.pe_cores(pe_name) <= 1:
                    continue  # every PE keeps at least one core
                vm.release(pe_name, 1)
                caps = cluster.capacities(df, selection)
                flow = constrained_rates(df, selection, input_rates, caps)
                omega = relative_application_throughput(df, flow)
                if omega >= floor - _EPS:
                    released = True
                    break
                vm.allocate(pe_name, 1)  # revert: too aggressive
            if not released:
                break

    def _retire_idle_vms(self, cluster: ClusterView) -> None:
        """Drop idle VMs from the plan (the reconciler terminates them).

        The local strategy retires idle VMs immediately.  The global
        strategy parks idle *live* VMs while their already-billed hour
        lasts — restarting costs a fresh hour, parking is free — and
        retires them once the paid time is nearly exhausted.
        """
        cfg = self.config
        for vm in cluster.idle_vms():
            if vm.is_new:
                cluster.remove(vm.key)
            elif cfg.strategy == "local":
                cluster.remove(vm.key)
            elif vm.paid_seconds_remaining <= cfg.interval * 1.5:
                cluster.remove(vm.key)

    # -- demand estimation --------------------------------------------------------------

    def _demand_rate(self, snapshot: Snapshot, pe_name: str) -> float:
        """Arrival rate to size for: last observed rate plus the rate needed
        to drain the PE's backlog over the configured horizon.

        Input PEs additionally consider the observed *external* rate: when
        an input PE momentarily has no capacity (e.g. its host crashed),
        its measured arrival rate reads zero even though traffic keeps
        flowing, and sizing from it would wrongly conclude there is no
        demand.
        """
        cfg = self.config
        arrival = float(snapshot.arrival_rates.get(pe_name, 0.0))
        if pe_name in self.dataflow.inputs:
            arrival = max(arrival, float(snapshot.input_rates.get(pe_name, 0.0)))
        backlog = float(snapshot.backlogs.get(pe_name, 0.0))
        return arrival + backlog / (cfg.drain_intervals * cfg.interval)

    def _input_demand(self, snapshot: Snapshot) -> dict[str, float]:
        """Input-PE rates inflated by their backlog drain requirement.

        Computed incrementally against the previous interval's snapshot:
        an input PE whose observed rates and backlog are unchanged reuses
        its previous demand value instead of re-deriving it.  Steady
        workloads (and repeated adapt() calls on one snapshot) hit this
        every interval.
        """
        prev = self._prev_snapshot
        prev_demand = self._prev_input_demand
        out: dict[str, float] = {}
        if prev is snapshot:
            out.update(prev_demand)
        elif prev is None:
            for name in self.dataflow.inputs:
                out[name] = self._demand_rate(snapshot, name)
        else:
            for name in self.dataflow.inputs:
                if (
                    name in prev_demand
                    and snapshot.arrival_rates.get(name, 0.0)
                    == prev.arrival_rates.get(name, 0.0)
                    and snapshot.input_rates.get(name, 0.0)
                    == prev.input_rates.get(name, 0.0)
                    and snapshot.backlogs.get(name, 0.0)
                    == prev.backlogs.get(name, 0.0)
                ):
                    out[name] = prev_demand[name]
                else:
                    out[name] = self._demand_rate(snapshot, name)
        self._prev_snapshot = snapshot
        self._prev_input_demand = out
        return dict(out)


class HedgedAdaptation(RuntimeAdaptation):
    """Reliability-aware adaptation (S26): hedge against predicted crashes.

    Extends the base heuristic with a *hedging pre-pass* driven by
    :attr:`~repro.core.state.Snapshot.doomed` — the instances the failure
    oracle predicts will stop (revocation or crash) within its horizon.
    Before the ordinary two-stage heuristic runs, every doomed VM is

    1. removed from the planning cluster (the reconciler then drains its
       buffered state over the network *before* the crash destroys it),
    2. and its per-PE cores are re-placed: survivors' free (already-paid)
       cores first, then replacement VMs — preferring the *durable* (non
       spot) catalog twin of the doomed VM's class so the replacement is
       not itself on the revocation clock.

    The base stages then run on the hedged snapshot, so scale-out sizing,
    alternate selection and idle-VM retirement all see the post-hedge
    fleet.  With nothing doomed this is exactly the base heuristic.
    """

    def adapt(self, snapshot: Snapshot, interval_index: int) -> DeploymentPlan:
        doomed = {
            key: t
            for key, t in snapshot.doomed.items()
            if key in snapshot.cluster
        }
        if not doomed:
            return super().adapt(snapshot, interval_index)

        cluster = snapshot.cluster.clone()
        displaced: list[tuple[str, VMClass]] = []
        for key in sorted(doomed):
            vm = cluster.remove(key)
            for pe_name, cores in sorted(vm.allocations.items()):
                displaced.extend([(pe_name, vm.vm_class)] * cores)

        replaced = 0
        for pe_name, klass in displaced:
            neighbours = set(self.dataflow.successors(pe_name)) | set(
                self.dataflow.predecessors(pe_name)
            )
            free = sorted(
                cluster.with_free_cores(),
                key=lambda vm: (
                    pe_name not in vm.allocations,
                    not any(n in vm.allocations for n in neighbours),
                    -vm.core_units(),
                ),
            )
            if free:
                free[0].allocate(pe_name, 1)
            else:
                cluster.new_vm(self._durable_twin(klass)).allocate(pe_name, 1)
                replaced += 1

        if _trace.enabled():
            _trace.emit(
                "hedge_preprovision",
                t=snapshot.time,
                doomed={k: float(v) for k, v in sorted(doomed.items())},
                displaced_cores=len(displaced),
                replacement_vms=replaced,
            )

        hedged = replace(snapshot, cluster=cluster, doomed={})
        return super().adapt(hedged, interval_index)

    def _durable_twin(self, vm_class: VMClass) -> VMClass:
        """The non-spot catalog class matching ``vm_class``'s shape.

        Falls back to ``vm_class`` itself when no durable twin exists
        (e.g. an all-spot catalog).
        """
        if not getattr(vm_class, "spot", False):
            return vm_class
        for klass in self.catalog:
            if (
                not klass.spot
                and klass.cores == vm_class.cores
                and klass.core_speed == vm_class.core_speed
            ):
                return klass
        return vm_class
