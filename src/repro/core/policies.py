"""Named scheduling policies compared in the paper's evaluation (§8).

A :class:`Policy` bundles an initial-deployment strategy with an optional
runtime-adaptation strategy and the application-dynamism toggle.  The
registry covers every line the paper's figures plot:

=====================  ==========================================================
name                   meaning
=====================  ==========================================================
``static-bruteforce``  Θ-optimal static deployment, no adaptation (small cases)
``static-local``       local deployment heuristic, no adaptation
``static-global``      global deployment heuristic, no adaptation
``local``              local deployment + local runtime adaptation
``global``             global deployment + global runtime adaptation
``local-nodyn``        local, alternates pinned to maximum value
``global-nodyn``       global, alternates pinned to maximum value
``hedged``             global + reliability hedging against predicted crashes
``anneal``             seeded anytime simulated-annealing static deployment
=====================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..cloud.billing import BillingModel
from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from .adaptation import AdaptationConfig, HedgedAdaptation, RuntimeAdaptation
from .anneal import AnnealConfig, AnnealingDeployment
from .bruteforce import BruteForceConfig, BruteForceDeployment
from .deployment import DeploymentConfig, InitialDeployment
from .objective import ObjectiveSpec
from .state import DeploymentPlan, Snapshot

__all__ = ["Policy", "make_policy", "POLICY_NAMES"]

POLICY_NAMES = (
    "static-bruteforce",
    "static-local",
    "static-global",
    "local",
    "global",
    "local-nodyn",
    "global-nodyn",
    "hedged",
    "anneal",
)


@dataclass
class Policy:
    """A deployment + adaptation pairing the run manager can execute.

    Attributes
    ----------
    name:
        Registry name.
    deployer:
        Object with ``plan(input_rates) → DeploymentPlan``.
    adapter:
        Runtime adaptation, or ``None`` for static policies.
    """

    name: str
    deployer: object
    adapter: Optional[RuntimeAdaptation]

    @property
    def adaptive(self) -> bool:
        return self.adapter is not None

    def initial_plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        """Initial deployment from estimated input rates."""
        return self.deployer.plan(input_rates)  # type: ignore[attr-defined]

    def adapt(
        self, snapshot: Snapshot, interval_index: int
    ) -> Optional[DeploymentPlan]:
        """Runtime decision at an interval boundary (None = keep as is)."""
        if self.adapter is None:
            return None
        return self.adapter.adapt(snapshot, interval_index)


def make_policy(
    name: str,
    dataflow: DynamicDataflow,
    catalog: list[VMClass],
    spec: ObjectiveSpec,
    adaptation_overrides: Optional[AdaptationConfig] = None,
    billing: Optional[BillingModel] = None,
) -> Policy:
    """Instantiate a named policy bound to a dataflow and catalog.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES`.
    spec:
        Objective parameters (Ω̂, ε, σ, period, interval) shared by the
        deployment and adaptation components.
    adaptation_overrides:
        Optional replacement adaptation config; its strategy/dynamism
        fields are still forced to match the policy name.
    billing:
        Optional pricing model; only the ``anneal`` policy consumes it
        (its search prices plans under the scenario's billing regime).
    """
    if name not in POLICY_NAMES:
        raise ValueError(f"unknown policy {name!r}; known: {POLICY_NAMES}")

    if name == "static-bruteforce":
        deployer = BruteForceDeployment(
            dataflow,
            catalog,
            BruteForceConfig(
                omega_min=spec.omega_min,
                sigma=spec.sigma,
                period_hours=spec.period / 3600.0,
            ),
        )
        return Policy(name=name, deployer=deployer, adapter=None)

    if name == "anneal":
        deployer = AnnealingDeployment(
            dataflow,
            catalog,
            AnnealConfig(
                omega_min=spec.omega_min,
                sigma=spec.sigma,
                period_hours=spec.period / 3600.0,
                billing=billing,
            ),
        )
        return Policy(name=name, deployer=deployer, adapter=None)

    static = name.startswith("static-")
    base = name.removeprefix("static-")
    dynamism = not base.endswith("-nodyn")
    # Hedged rides on the global strategy: best-fit provisioning and
    # paid-hour parking are what make pre-provisioned replacements cheap.
    strategy = (
        "global" if base.startswith("global") or base == "hedged" else "local"
    )

    deployer = InitialDeployment(
        dataflow,
        catalog,
        DeploymentConfig(
            strategy=strategy,
            omega_min=spec.omega_min,
            dynamism=dynamism,
        ),
    )
    if static:
        return Policy(name=name, deployer=deployer, adapter=None)

    acfg = adaptation_overrides or AdaptationConfig()
    acfg = replace(
        acfg,
        strategy=strategy,
        dynamism=dynamism,
        omega_min=spec.omega_min,
        epsilon=spec.epsilon,
        interval=spec.interval,
    )
    adapter_cls = HedgedAdaptation if name == "hedged" else RuntimeAdaptation
    adapter = adapter_cls(dataflow, catalog, acfg)
    return Policy(name=name, deployer=deployer, adapter=adapter)
