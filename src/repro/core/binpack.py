"""Variable-sized bin-packing primitives (paper §7).

The resource-allocation problem reduces to Variable-Sized Bin Packing
(VBP): pack PE capacity demands (in standard core units) into VM classes
of different capacities and prices, minimizing total price.  This module
provides the generic primitives the deployment/adaptation heuristics
build on:

* :func:`cheapest_class_for` — best-fit class selection (``RepackPE``),
* :func:`greedy_cover` — cover a demand with a multiset of classes,
* :func:`first_fit_decreasing` — classic FFD for fixed-size bins,
* :func:`iterative_repack` — the repacking pass the global strategy runs
  over under-filled bins (``RepackFreeVMs``).

Everything here is pure and unit-agnostic: sizes and capacities are plain
floats, bins are lists of (label, size) items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "BinClass",
    "Bin",
    "cheapest_class_for",
    "greedy_cover",
    "first_fit_decreasing",
    "iterative_repack",
    "packing_cost",
]

_EPS = 1e-9


@dataclass(frozen=True)
class BinClass:
    """A bin size option with a price (a VM class, abstractly)."""

    name: str
    capacity: float
    price: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.price < 0:
            raise ValueError(f"{self.name}: price must be non-negative")


@dataclass
class Bin:
    """One open bin holding labelled items."""

    bin_class: BinClass
    items: list[tuple[str, float]] = field(default_factory=list)

    @property
    def used(self) -> float:
        return sum(size for _, size in self.items)

    @property
    def free(self) -> float:
        return self.bin_class.capacity - self.used

    def fits(self, size: float) -> bool:
        return size <= self.free + _EPS

    def add(self, label: str, size: float) -> None:
        if size < 0:
            raise ValueError("item size must be non-negative")
        if not self.fits(size):
            raise ValueError(
                f"item {label!r} ({size:g}) does not fit in bin with "
                f"{self.free:g} free"
            )
        self.items.append((label, size))


#: Memoized (price, capacity)-sorted orders, keyed by the class tuple.
#: Callers (deployment, repacking, adaptation) pass the same catalog on
#: every call, so the sort runs once per catalog instead of per query.
_price_order_cache: dict[tuple, tuple] = {}


def _price_order(classes: Sequence[BinClass]) -> tuple[BinClass, ...]:
    key = tuple(classes)
    order = _price_order_cache.get(key)
    if order is None:
        if len(_price_order_cache) > 64:
            _price_order_cache.clear()
        order = tuple(sorted(key, key=lambda c: (c.price, c.capacity)))
        _price_order_cache[key] = order
    return order


def cheapest_class_for(
    size: float, classes: Sequence[BinClass]
) -> Optional[BinClass]:
    """The cheapest class that can hold ``size`` in one bin (best fit).

    Ties on price resolve to the smaller capacity (less waste).  Returns
    ``None`` when ``size`` exceeds every class.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    # First fitting class in stable (price, capacity) order ≡ the old
    # min() over the filtered candidates, including tie resolution.
    for klass in _price_order(classes):
        if klass.capacity >= size - _EPS:
            return klass
    return None


def greedy_cover(size: float, classes: Sequence[BinClass]) -> list[BinClass]:
    """Cover a (possibly huge) demand with a multiset of classes.

    Strategy: while the residual exceeds the largest class, emit the class
    with the best price-per-capacity; finish with the cheapest single
    class that fits the remainder.  This mirrors the paper's heuristics,
    which fill with the largest class and best-fit the tail.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if not classes:
        raise ValueError("no classes given")
    result: list[BinClass] = []
    largest = max(classes, key=lambda c: c.capacity)
    workhorse = min(classes, key=lambda c: (c.price / c.capacity, -c.capacity))
    residual = size
    while residual > largest.capacity + _EPS:
        result.append(workhorse)
        residual -= workhorse.capacity
    if residual > _EPS:
        tail = cheapest_class_for(residual, classes)
        assert tail is not None  # residual ≤ largest.capacity by loop guard
        result.append(tail)
    return result


def first_fit_decreasing(
    items: Sequence[tuple[str, float]], bin_class: BinClass
) -> list[Bin]:
    """Classic FFD into bins of a single class.

    Raises ``ValueError`` if any single item exceeds the class capacity.
    """
    bins: list[Bin] = []
    for label, size in sorted(items, key=lambda kv: kv[1], reverse=True):
        if size > bin_class.capacity + _EPS:
            raise ValueError(
                f"item {label!r} ({size:g}) exceeds bin capacity "
                f"{bin_class.capacity:g}"
            )
        for b in bins:
            if b.fits(size):
                b.add(label, size)
                break
        else:
            b = Bin(bin_class)
            b.add(label, size)
            bins.append(b)
    return bins


def packing_cost(bins: Sequence[Bin]) -> float:
    """Total price of a set of bins."""
    return sum(b.bin_class.price for b in bins)


def iterative_repack(
    bins: Sequence[Bin],
    classes: Sequence[BinClass],
    max_rounds: int = 16,
) -> list[Bin]:
    """Iteratively reduce packing cost (the global strategy's repacking).

    Each round performs two improvements until a fixed point:

    1. **Evacuate** the least-filled bin: if all its items fit into the
       free space of the other bins (first-fit over descending free
       space), move them and drop the bin.
    2. **Downsize** every bin to the cheapest class that still holds its
       content.

    The input is not mutated; returns a new bin list with cost ≤ input
    cost.
    """
    current = [Bin(b.bin_class, list(b.items)) for b in bins]
    for _ in range(max_rounds):
        changed = False

        # (1) try to evacuate the least-filled bin.
        non_empty = [b for b in current if b.items]
        if len(non_empty) > 1:
            victim = min(non_empty, key=lambda b: b.used)
            others = [b for b in current if b is not victim]
            trial = [Bin(b.bin_class, list(b.items)) for b in others]
            ok = True
            for label, size in sorted(
                victim.items, key=lambda kv: kv[1], reverse=True
            ):
                hosts = sorted(trial, key=lambda b: b.free, reverse=True)
                for h in hosts:
                    if h.fits(size):
                        h.add(label, size)
                        break
                else:
                    ok = False
                    break
            if ok:
                current = trial
                changed = True

        # (2) downsize bins to their cheapest sufficient class.
        downsized: list[Bin] = []
        for b in current:
            if not b.items:
                changed = True  # dropping an empty bin is an improvement
                continue
            best = cheapest_class_for(b.used, classes)
            if best is not None and best.price < b.bin_class.price - _EPS:
                downsized.append(Bin(best, list(b.items)))
                changed = True
            else:
                downsized.append(b)
        current = downsized

        if not changed:
            break
    return current
