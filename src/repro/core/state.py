"""Planning state shared by the heuristics (paper §5–7).

The heuristics never touch live engine objects.  They see the world as a
:class:`Snapshot` — the monitored state at an interval boundary — and
manipulate a :class:`ClusterView`, a lightweight mutable model of the VM
fleet.  The engine reconciles the resulting :class:`DeploymentPlan`
against reality (provisioning, releasing, migrating buffers).

Capacity arithmetic (paper §3–4): a core of VM class ``k`` with monitored
coefficient ``κ`` supplies ``π_k · κ`` *standard core units*; a PE whose
active alternate costs ``c`` core-seconds/message sustains
``Σ units / c`` messages/second.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow

__all__ = ["VMView", "ClusterView", "DeploymentPlan", "Snapshot"]

_new_vm_ids = itertools.count()


@dataclass
class VMView:
    """Planning view of one VM (existing or to-be-provisioned).

    Attributes
    ----------
    vm_class:
        The resource class.
    instance_id:
        Live instance id, or ``None`` for a VM the plan wants created.
    coefficient:
        Monitored CPU coefficient (rated = 1.0; planned VMs assume rated
        behaviour, as the paper's deployment stage does).
    allocations:
        PE name → cores held on this VM.
    paid_seconds_remaining:
        Seconds left in the already-billed hour (0 for planned VMs).
    """

    vm_class: VMClass
    instance_id: Optional[str] = None
    coefficient: float = 1.0
    allocations: dict[str, int] = field(default_factory=dict)
    paid_seconds_remaining: float = 0.0
    #: Stable key for planned VMs (so plans are diffable before provisioning).
    plan_key: str = field(default_factory=lambda: f"planned-{next(_new_vm_ids)}")

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ValueError("coefficient must be positive")
        if self.used_cores > self.vm_class.cores:
            raise ValueError(
                f"allocations exceed {self.vm_class.name} core count"
            )

    @property
    def key(self) -> str:
        """Identity used in plans: instance id if live, else the plan key."""
        return self.instance_id or self.plan_key

    @property
    def is_new(self) -> bool:
        return self.instance_id is None

    @property
    def used_cores(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_cores(self) -> int:
        return self.vm_class.cores - self.used_cores

    @property
    def idle(self) -> bool:
        return self.used_cores == 0

    def core_units(self) -> float:
        """Standard capacity units supplied by ONE core of this VM."""
        return self.vm_class.core_speed * self.coefficient

    def units_for(self, pe_name: str) -> float:
        """Standard units this VM currently supplies to ``pe_name``."""
        return self.allocations.get(pe_name, 0) * self.core_units()

    def cores_for(self, pe_name: str) -> int:
        """Cores held by ``pe_name`` on this VM (0 if absent)."""
        return self.allocations.get(pe_name, 0)

    def allocate(self, pe_name: str, cores: int = 1) -> None:
        if cores < 1:
            raise ValueError("must allocate ≥ 1 core")
        if cores > self.free_cores:
            raise ValueError(
                f"{self.key}: want {cores} cores, only {self.free_cores} free"
            )
        self.allocations[pe_name] = self.allocations.get(pe_name, 0) + cores

    def release(self, pe_name: str, cores: Optional[int] = None) -> int:
        held = self.allocations.get(pe_name, 0)
        n = held if cores is None else min(cores, held)
        if n == 0:
            return 0
        if n < held:
            self.allocations[pe_name] = held - n
        else:
            self.allocations.pop(pe_name, None)
        return n

    def clone(self) -> "VMView":
        # Bypasses __init__/__post_init__: a valid view clones to a valid
        # view, and the adaptation loop clones whole fleets every interval.
        new = VMView.__new__(VMView)
        new.vm_class = self.vm_class
        new.instance_id = self.instance_id
        new.coefficient = self.coefficient
        new.allocations = dict(self.allocations)
        new.paid_seconds_remaining = self.paid_seconds_remaining
        new.plan_key = self.plan_key
        return new


class ClusterView:
    """A mutable model of the fleet the heuristics plan against."""

    def __init__(self, vms: Iterable[VMView] = ()) -> None:
        self._vms: dict[str, VMView] = {}
        for vm in vms:
            self.add(vm)

    # -- membership --------------------------------------------------------

    def add(self, vm: VMView) -> VMView:
        if vm.key in self._vms:
            raise ValueError(f"duplicate VM key {vm.key!r}")
        self._vms[vm.key] = vm
        return vm

    def new_vm(self, vm_class: VMClass) -> VMView:
        """Plan a brand-new VM of ``vm_class`` (rated coefficient)."""
        return self.add(VMView(vm_class=vm_class))

    def remove(self, key: str) -> VMView:
        try:
            return self._vms.pop(key)
        except KeyError:
            raise KeyError(f"no VM with key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._vms

    def __len__(self) -> int:
        return len(self._vms)

    def __getitem__(self, key: str) -> VMView:
        return self._vms[key]

    @property
    def vms(self) -> list[VMView]:
        return list(self._vms.values())

    def clone(self) -> "ClusterView":
        # Clones preserve keys by construction, so the duplicate check in
        # add() is skipped on this (hot) path.
        new = ClusterView.__new__(ClusterView)
        new._vms = {key: vm.clone() for key, vm in self._vms.items()}
        return new

    # -- queries -----------------------------------------------------------

    def vms_hosting(self, pe_name: str) -> list[VMView]:
        return [vm for vm in self._vms.values() if pe_name in vm.allocations]

    def idle_vms(self) -> list[VMView]:
        return [vm for vm in self._vms.values() if vm.idle]

    def with_free_cores(self) -> list[VMView]:
        return [vm for vm in self._vms.values() if vm.free_cores > 0]

    def pe_units(self, pe_name: str) -> float:
        """Total standard capacity units allocated to a PE."""
        return sum(vm.units_for(pe_name) for vm in self._vms.values())

    def pe_units_map(self) -> dict[str, float]:
        """Standard capacity units per PE, for every hosted PE, in one pass.

        Equivalent to ``{pe: self.pe_units(pe)}`` restricted to PEs with at
        least one core, but O(Σ allocations) instead of O(VMs × PEs): each
        VM contributes only the PEs it actually hosts.  Per-PE float sums
        accumulate in the same VM order as :meth:`pe_units`, so the values
        are bit-identical (skipped terms are exact zeros).
        """
        totals: dict[str, float] = {}
        get = totals.get
        for vm in self._vms.values():
            core_units = vm.vm_class.core_speed * vm.coefficient
            for pe_name, cores in vm.allocations.items():
                totals[pe_name] = get(pe_name, 0.0) + cores * core_units
        return totals

    def pe_cores(self, pe_name: str) -> int:
        return sum(vm.allocations.get(pe_name, 0) for vm in self._vms.values())

    def total_used_cores(self) -> int:
        """Cores allocated across the whole fleet."""
        return sum(vm.used_cores for vm in self._vms.values())

    def capacities(
        self,
        dataflow: DynamicDataflow,
        selection: Mapping[str, str],
    ) -> dict[str, float]:
        """Sustainable messages/second per PE under ``selection``."""
        units = self.pe_units_map()
        out: dict[str, float] = {}
        for name in dataflow.pe_names:
            cost = dataflow.active_alternate(selection, name).cost
            out[name] = units.get(name, 0.0) / cost
        return out

    def total_hourly_price(self) -> float:
        """Sum of hourly prices of all VMs in the view (burn rate)."""
        return sum(vm.vm_class.hourly_price for vm in self._vms.values())

    def marginal_hourly_price(self) -> float:
        """Burn rate counting only VMs the plan would newly provision."""
        return sum(
            vm.vm_class.hourly_price for vm in self._vms.values() if vm.is_new
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """The heuristics' output: a target configuration for the next interval.

    ``cluster`` holds the desired fleet (existing VM keys are kept, new
    VMs carry plan keys); live VMs absent from the cluster are terminated
    by the reconciler.
    """

    selection: Mapping[str, str]
    cluster: ClusterView

    def capacities(self, dataflow: DynamicDataflow) -> dict[str, float]:
        return self.cluster.capacities(dataflow, self.selection)

    def describe(self) -> str:
        """Human-readable one-plan summary (used in example scripts)."""
        lines = [f"selection: {dict(self.selection)}"]
        for vm in self.cluster.vms:
            tag = "NEW " if vm.is_new else ""
            lines.append(
                f"  {tag}{vm.key} [{vm.vm_class.name}] "
                f"alloc={vm.allocations} free={vm.free_cores}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Snapshot:
    """Monitored state handed to the runtime heuristics (paper §5).

    All quantities are *observations* from the monitoring framework over
    the previous interval — the heuristics may not peek at the underlying
    traces or the future.
    """

    #: Interval-boundary timestamp.
    time: float
    #: Current active alternate per PE.
    selection: Mapping[str, str]
    #: Monitored fleet state (coefficients, allocations, paid time).
    cluster: ClusterView
    #: Observed external input rate per input PE (msg/s, last interval).
    input_rates: Mapping[str, float]
    #: Observed arrival rate per PE (msg/s, last interval).
    arrival_rates: Mapping[str, float]
    #: Relative application throughput over the last interval.
    omega_last: float
    #: Running average throughput Ω̄ since the period started.
    omega_average: float
    #: Pending backlog per PE (messages queued, all VMs).
    backlogs: Mapping[str, float]
    #: Cumulative dollar cost μ[t].
    cumulative_cost: float
    #: Instance id → predicted stop time (s) within the reliability
    #: oracle's horizon.  Empty when no oracle is wired (the common case)
    #: or when nothing is predicted to fail soon.  Revocation notices and
    #: published spot-reclaim schedules make this observable in a real
    #: deployment, so it stays within the "no peeking" contract.
    doomed: Mapping[str, float] = field(default_factory=dict)
