"""The paper's core contribution (S8–S13).

Objective (§6), variable-sized bin packing, initial deployment (Alg. 1),
runtime adaptation (Alg. 2), the brute-force static baseline, and the
named policy registry used by the evaluation.
"""

from .adaptation import AdaptationConfig, HedgedAdaptation, RuntimeAdaptation
from .anneal import AnnealConfig, AnnealingDeployment
from .binpack import (
    Bin,
    BinClass,
    cheapest_class_for,
    first_fit_decreasing,
    greedy_cover,
    iterative_repack,
    packing_cost,
)
from .bruteforce import BruteForceConfig, BruteForceDeployment, SearchBudgetExceeded
from .deployment import (
    DeploymentConfig,
    InitialDeployment,
    Strategy,
    repack_cluster,
    select_alternates,
)
from .paths import DynamicPathSet, PathChoice, PathSelector, PathVariant
from .objective import EvaluationOutcome, ObjectiveSpec, sigma_from_expectations
from .policies import POLICY_NAMES, Policy, make_policy
from .state import ClusterView, DeploymentPlan, Snapshot, VMView

__all__ = [
    "POLICY_NAMES",
    "AdaptationConfig",
    "AnnealConfig",
    "AnnealingDeployment",
    "Bin",
    "BinClass",
    "BruteForceConfig",
    "BruteForceDeployment",
    "ClusterView",
    "DeploymentConfig",
    "DeploymentPlan",
    "EvaluationOutcome",
    "HedgedAdaptation",
    "InitialDeployment",
    "DynamicPathSet",
    "ObjectiveSpec",
    "PathChoice",
    "PathSelector",
    "PathVariant",
    "Policy",
    "RuntimeAdaptation",
    "SearchBudgetExceeded",
    "Snapshot",
    "Strategy",
    "VMView",
    "cheapest_class_for",
    "first_fit_decreasing",
    "greedy_cover",
    "iterative_repack",
    "make_policy",
    "packing_cost",
    "repack_cluster",
    "select_alternates",
    "sigma_from_expectations",
]
