"""Initial deployment heuristics (paper §7.1, Algorithm 1, Table 1).

Deployment runs in two stages:

1. **Alternate selection** — each PE independently picks the alternate with
   the best relative-value/cost ratio.  The *local* strategy prices an
   alternate by its own processing cost; the *global* strategy prices it
   by its **downstream cost** — its own cost plus the selectivity-weighted
   cost of every successor — computed by dynamic programming over a
   reverse-BFS traversal rooted at the output PEs.

2. **Resource allocation** — a variable-sized bin-packing procedure.  PEs
   first receive one core each in forward-BFS order (collocating dataflow
   neighbours on the same VM), then cores are added one at a time to the
   current *bottleneck* (the PE with the lowest relative throughput) until
   the predicted relative application throughput meets the Ω̂ constraint.
   All allocation uses the **largest** VM class; the global strategy then
   runs two repacking passes (``RepackPE`` best-fit downsizing and
   ``RepackFreeVMs`` iterative repacking) that trade collocation for
   reduced resource cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping, Optional

from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from ..dataflow.metrics import constrained_rates, relative_application_throughput
from ..dataflow.patterns import SplitPattern
from .binpack import BinClass
from .state import ClusterView, DeploymentPlan, VMView

__all__ = ["Strategy", "DeploymentConfig", "InitialDeployment", "select_alternates"]

Strategy = Literal["local", "global"]

_EPS = 1e-9


@dataclass(frozen=True)
class DeploymentConfig:
    """Tunables of the deployment heuristic.

    Parameters
    ----------
    strategy:
        ``"local"`` or ``"global"`` (Table 1).
    omega_min:
        Target relative application throughput Ω̂.
    dynamism:
        When ``False`` the alternate-selection stage is skipped and every
        PE runs its maximum-value alternate (the paper's "without
        application dynamism" baselines).
    repack:
        Whether the global strategy runs its repacking passes
        (``RepackPE``/``RepackFreeVMs``).  Exposed for the ablation
        benchmarks; ignored by the local strategy, which never repacks.
    max_cores:
        Safety cap on total allocated cores.
    """

    strategy: Strategy = "local"
    omega_min: float = 0.7
    dynamism: bool = True
    repack: bool = True
    max_cores: int = 4096

    def __post_init__(self) -> None:
        if self.strategy not in ("local", "global"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if not 0 < self.omega_min <= 1:
            raise ValueError("omega_min must be in (0, 1]")
        if self.max_cores < 1:
            raise ValueError("max_cores must be ≥ 1")


def select_alternates(
    dataflow: DynamicDataflow, strategy: Strategy
) -> dict[str, str]:
    """Alternate-selection stage of Algorithm 1 (lines 2–11).

    Ranks every alternate by ``γ / GetCostOfAlternate`` and takes the
    best.  The global cost is resolved by DP in reverse topological order
    so each PE's successors have already fixed their choice.
    """
    selection: dict[str, str] = {}
    if strategy == "local":
        for p in dataflow.pes:
            best = max(
                p.alternates,
                key=lambda a: (p.relative_value(a) / a.cost, a.name),
            )
            selection[p.name] = best.name
        return selection

    # Global: downstream-cost DP, successors first.
    dc: dict[str, float] = {}
    for name in reversed(dataflow.topological_order()):
        p = dataflow[name]
        succ = dataflow.successors(name)
        weight = 1.0
        if succ and dataflow.split_pattern(name) is not SplitPattern.AND_SPLIT:
            weight = 1.0 / len(succ)
        succ_cost = sum(dc[m] for m in succ)

        def global_cost(a) -> float:
            return a.cost + a.selectivity * weight * succ_cost

        best = max(
            p.alternates,
            key=lambda a: (p.relative_value(a) / global_cost(a), a.name),
        )
        selection[name] = best.name
        dc[name] = global_cost(best)
    return selection


class InitialDeployment:
    """Algorithm 1: produce a :class:`DeploymentPlan` from estimated rates.

    Parameters
    ----------
    dataflow:
        The abstract dynamic dataflow.
    catalog:
        VM classes available from the provider (any order).
    config:
        Strategy and constraint parameters.
    """

    def __init__(
        self,
        dataflow: DynamicDataflow,
        catalog: list[VMClass],
        config: Optional[DeploymentConfig] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        self.dataflow = dataflow
        self.catalog = sorted(catalog)
        self.config = config or DeploymentConfig()
        self._bin_classes = [
            BinClass(c.name, c.total_capacity, c.hourly_price) for c in self.catalog
        ]
        self._class_by_name = {c.name: c for c in self.catalog}

    # -- public -------------------------------------------------------------

    def plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        """Run both stages and return the initial deployment plan."""
        cfg = self.config
        if cfg.dynamism:
            selection = select_alternates(self.dataflow, cfg.strategy)
        else:
            selection = self.dataflow.default_selection()

        cluster = self._allocate(selection, input_rates)

        if cfg.strategy == "global" and cfg.repack:
            demands = self._demands(cluster, selection, input_rates)
            cluster = repack_cluster(
                cluster, demands, self.catalog, self.dataflow
            )
        return DeploymentPlan(selection=selection, cluster=cluster)

    # -- resource allocation stage (lines 12–27) -------------------------------

    def _allocate(
        self, selection: Mapping[str, str], input_rates: Mapping[str, float]
    ) -> ClusterView:
        cfg = self.config
        df = self.dataflow
        cluster = ClusterView()
        largest = self.catalog[-1]
        bfs = df.forward_bfs_order()

        # INCREMENTAL_ALLOCATION seed: one core per PE in forward BFS order,
        # filling the most recent VM before opening a new one (collocation).
        for name in bfs:
            self._place_core(cluster, name, largest)

        # Iteratively feed the worst bottleneck one core at a time until the
        # throughput constraint is met.
        while True:
            caps = cluster.capacities(df, selection)
            flow = constrained_rates(df, selection, input_rates, caps)
            omega = relative_application_throughput(df, flow)
            if omega >= cfg.omega_min - _EPS:
                break
            bottleneck = self._bottleneck(caps, flow.arrivals, bfs)
            if bottleneck is None:
                break  # nothing is saturated yet omega < target: inputs idle
            total = sum(vm.used_cores for vm in cluster.vms)
            if total >= cfg.max_cores:
                raise RuntimeError(
                    f"deployment exceeded max_cores={cfg.max_cores} without "
                    f"meeting Ω̂={cfg.omega_min}"
                )
            self._place_core(cluster, bottleneck, largest)
        return cluster

    @staticmethod
    def _bottleneck(
        caps: Mapping[str, float],
        arrivals: Mapping[str, float],
        order: list[str],
    ) -> Optional[str]:
        """PE with the lowest service ratio (capacity / arrival), i.e. the
        lowest relative PE throughput; ties resolve in BFS order."""
        worst: Optional[str] = None
        worst_ratio = 1.0 - 1e-6
        for name in order:
            arrival = arrivals.get(name, 0.0)
            if arrival <= _EPS:
                continue
            ratio = caps.get(name, 0.0) / arrival
            if ratio < worst_ratio:
                worst = name
                worst_ratio = ratio
        return worst

    @staticmethod
    def _place_core(
        cluster: ClusterView, pe_name: str, vm_class: VMClass
    ) -> VMView:
        """Allocate one core for ``pe_name``, preferring VMs that already
        host it, then the most recently opened VM (collocation), then any
        free core, opening a new ``vm_class`` VM as a last resort."""
        hosting = [vm for vm in cluster.vms_hosting(pe_name) if vm.free_cores]
        if hosting:
            vm = hosting[-1]
        else:
            free = cluster.with_free_cores()
            vm = free[-1] if free else cluster.new_vm(vm_class)
        vm.allocate(pe_name, 1)
        return vm

    def _demands(
        self,
        cluster: ClusterView,
        selection: Mapping[str, str],
        input_rates: Mapping[str, float],
    ) -> dict[str, float]:
        """Standard-unit demand per PE implied by the converged allocation.

        The incremental loop stops as soon as Ω̂ is met, so the allocated
        units per PE (capped below at the units needed for the observed
        arrivals, one core minimum) *are* the demand the repacking must
        preserve.
        """
        df = self.dataflow
        demands: dict[str, float] = {}
        for name in df.pe_names:
            # Keep what the incremental loop granted: trimming below the
            # allocation could break Ω̂ for non-bottleneck PEs whose slack
            # is an artifact of integer cores.
            allocated = cluster.pe_units(name)
            demands[name] = allocated if allocated > 0 else _EPS
        return demands


def repack_cluster(
    cluster: ClusterView,
    demands: Mapping[str, float],
    catalog: list[VMClass],
    dataflow: DynamicDataflow,
) -> ClusterView:
    """Global-strategy repacking (``RepackPE`` + ``RepackFreeVMs``).

    Rebuilds the packing from the per-PE unit demands:

    1. chunk each PE's demand to at most the largest class capacity and
       first-fit the chunks over open VMs in forward-BFS order (tight
       packing, still respecting integer cores),
    2. downsize every VM to the cheapest class whose capacity and core
       count still fit its content (best-fit ``RepackPE``),
    3. evacuate the least-filled VM into the others' free cores when
       possible, iterating to a fixed point (``RepackFreeVMs``).

    Collocation may be sacrificed; the paper accepts that trade-off.
    """
    catalog = sorted(catalog)
    largest = catalog[-1]

    # -- step 1: rebuild with FFD over chunks ---------------------------------
    rebuilt = ClusterView()
    for name in dataflow.forward_bfs_order():
        remaining = demands.get(name, 0.0)
        if remaining <= _EPS:
            remaining = 2 * _EPS  # every PE keeps at least one core
        while remaining > _EPS:
            chunk = min(remaining, largest.total_capacity)
            placed = False
            for vm in rebuilt.vms:
                cores = _cores_for_units(chunk, vm.vm_class)
                if cores <= vm.free_cores:
                    vm.allocate(name, cores)
                    placed = True
                    break
            if not placed:
                vm = rebuilt.new_vm(largest)
                cores = min(
                    _cores_for_units(chunk, largest), largest.cores
                )
                vm.allocate(name, cores)
            remaining -= chunk

    # -- steps 2–3: downsize + evacuate to fixed point -------------------------
    for _ in range(16):
        changed = _downsize_pass(rebuilt, catalog)
        changed = _evacuate_pass(rebuilt) or changed
        if not changed:
            break

    # Repacking is an improvement pass: chunk-whole placement can
    # occasionally fragment worse than the incremental fill, so keep the
    # cheaper of the two packings.
    if rebuilt.total_hourly_price() > cluster.total_hourly_price() + 1e-12:
        return cluster
    return rebuilt


def _cores_for_units(units: float, vm_class: VMClass) -> int:
    """Cores of ``vm_class`` needed to supply ``units`` (rated speed)."""
    return max(1, math.ceil(units / vm_class.core_speed - 1e-9))


def _downsize_pass(cluster: ClusterView, catalog: list[VMClass]) -> bool:
    """Swap each VM to the cheapest class that fits its content."""
    changed = False
    for vm in cluster.vms:
        if vm.idle:
            cluster.remove(vm.key)
            changed = True
            continue
        if vm.instance_id is not None:
            continue  # never resize a live VM in place
        content_units = {
            pe: cores * vm.vm_class.core_speed
            for pe, cores in vm.allocations.items()
        }
        best: Optional[VMClass] = None
        best_alloc: dict[str, int] = {}
        for klass in catalog:
            if klass.hourly_price >= vm.vm_class.hourly_price - 1e-12:
                continue
            alloc = {
                pe: _cores_for_units(u, klass) for pe, u in content_units.items()
            }
            if sum(alloc.values()) <= klass.cores:
                best = klass
                best_alloc = alloc
                break  # catalog ascending: first (smallest) fit is cheapest
        if best is not None:
            cluster.remove(vm.key)
            cluster.add(VMView(vm_class=best, allocations=best_alloc))
            changed = True
    return changed


def _evacuate_pass(cluster: ClusterView) -> bool:
    """Try to move the least-filled planned VM's content into free cores of
    the remaining VMs (unit-preserving); drop it on success."""
    candidates = [vm for vm in cluster.vms if vm.is_new and not vm.idle]
    if len(cluster.vms) < 2 or not candidates:
        return False
    victim = min(candidates, key=lambda vm: vm.used_cores * vm.core_units())
    others = [vm for vm in cluster.vms if vm is not victim]

    moves: list[tuple[VMView, str, int]] = []
    budget = {vm.key: vm.free_cores for vm in others}
    for pe, cores in victim.allocations.items():
        units = cores * victim.vm_class.core_speed
        placed = False
        for vm in sorted(others, key=lambda v: budget[v.key], reverse=True):
            need = _cores_for_units(units, vm.vm_class)
            if need <= budget[vm.key]:
                moves.append((vm, pe, need))
                budget[vm.key] -= need
                placed = True
                break
        if not placed:
            return False

    for vm, pe, cores in moves:
        vm.allocate(pe, cores)
    cluster.remove(victim.key)
    return True
