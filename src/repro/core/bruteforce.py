"""Static brute-force optimal deployment (paper §8's baseline).

Exhaustively searches alternate selections × VM-class multisets for the
configuration that maximizes Θ = Γ − σ·μ subject to Ω ≥ Ω̂, assuming an
ideal cloud (no variability) and a constant input rate — exactly the
assumptions under which the paper's "static brute-force" is optimal.

For each selection the required capacity is computed by throttling the
*inputs* to ``Ω̂ × rate`` and propagating the ideal flow: sizing every PE
for the throttled flow achieves relative application throughput exactly
Ω̂ with minimal capacity.  VM multisets are enumerated with cost-bound
pruning; the per-PE demands are then first-fit packed at integer-core
granularity to verify feasibility.

The search is exponential in PE alternates and VM counts; the paper notes
it "takes prohibitively long ... for higher data rates".  A
``max_configurations`` guard makes that explicit instead of hanging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from ..cloud.resources import VMClass
from ..dataflow.graph import DynamicDataflow
from .state import ClusterView, DeploymentPlan, VMView

__all__ = ["BruteForceConfig", "BruteForceDeployment", "SearchBudgetExceeded"]

_EPS = 1e-9


class SearchBudgetExceeded(RuntimeError):
    """The configuration space exceeded ``max_configurations``."""


@dataclass(frozen=True)
class BruteForceConfig:
    """Search parameters.

    Parameters
    ----------
    omega_min:
        Throughput constraint Ω̂.
    sigma:
        Value/dollar slope used to pick the Θ-optimal configuration.
    period_hours:
        Billing horizon over which μ is accumulated (static deployments
        keep their fleet for the whole period).
    max_configurations:
        Upper bound on examined (selection × multiset) combinations.
    """

    omega_min: float = 0.7
    sigma: float = 0.01
    period_hours: float = 6.0
    max_configurations: int = 2_000_000

    def __post_init__(self) -> None:
        if not 0 < self.omega_min <= 1:
            raise ValueError("omega_min must be in (0, 1]")
        if self.sigma < 0:
            raise ValueError("sigma must be ≥ 0")
        if self.period_hours <= 0:
            raise ValueError("period_hours must be positive")


class BruteForceDeployment:
    """Exhaustive Θ-optimal static deployment for small problems."""

    def __init__(
        self,
        dataflow: DynamicDataflow,
        catalog: list[VMClass],
        config: Optional[BruteForceConfig] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        self.dataflow = dataflow
        self.catalog = sorted(catalog)
        self.config = config or BruteForceConfig()
        self._examined = 0

    # -- public ---------------------------------------------------------------

    def plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        """Search for the Θ-optimal static plan.

        Raises
        ------
        SearchBudgetExceeded
            When the space is too large (high data rates / many
            alternates) — mirroring the paper's observation that the
            brute force is impractical there.
        RuntimeError
            If no feasible configuration exists (should not happen with a
            non-empty catalog).
        """
        cfg = self.config
        self._examined = 0
        best_theta = -math.inf
        best: Optional[DeploymentPlan] = None

        for selection in self.dataflow.all_selections():
            demands = self._demands(selection, input_rates)
            gamma = self.dataflow.application_value(selection)
            cluster = self._cheapest_packing(demands, gamma, best_theta)
            if cluster is None:
                continue
            cost = cluster.total_hourly_price() * cfg.period_hours
            theta = gamma - cfg.sigma * cost
            if theta > best_theta:
                best_theta = theta
                best = DeploymentPlan(selection=selection, cluster=cluster)

        if best is None:
            raise RuntimeError("no feasible brute-force configuration found")
        return best

    @property
    def examined_configurations(self) -> int:
        """Configurations inspected by the last :meth:`plan` call."""
        return self._examined

    # -- demand model ------------------------------------------------------------

    def _demands(
        self, selection: Mapping[str, str], input_rates: Mapping[str, float]
    ) -> dict[str, float]:
        """Per-PE standard-unit demand to deliver exactly Ω̂."""
        throttled = {
            name: rate * self.config.omega_min
            for name, rate in input_rates.items()
        }
        rates = self.dataflow.ideal_rates(selection, throttled)
        demands = {}
        for name, (arrival, _out) in rates.items():
            cost = self.dataflow.active_alternate(selection, name).cost
            demands[name] = max(arrival * cost, _EPS)
        return demands

    # -- packing search -------------------------------------------------------------

    def _cheapest_packing(
        self,
        demands: Mapping[str, float],
        gamma: float,
        theta_to_beat: float,
    ) -> Optional[ClusterView]:
        """Min-cost feasible VM multiset for ``demands``.

        Enumerates class count vectors recursively with two prunings: cost
        already above the cheapest feasible multiset found, and Θ upper
        bound (``gamma − σ·cost``) already below ``theta_to_beat``.
        """
        cfg = self.config
        total = sum(demands.values())
        classes = self.catalog
        # Upper bound per class: enough of it alone to cover everything,
        # plus slack for integer-core fragmentation.
        limits = [
            math.ceil(total / c.total_capacity) + len(demands) for c in classes
        ]

        best_cost = math.inf
        best_cluster: Optional[ClusterView] = None
        counts = [0] * len(classes)

        def rec(i: int, capacity: float, hourly: float) -> None:
            nonlocal best_cost, best_cluster
            self._examined += 1
            if self._examined > cfg.max_configurations:
                raise SearchBudgetExceeded(
                    f"more than {cfg.max_configurations} configurations"
                )
            if hourly * cfg.period_hours >= best_cost - _EPS:
                return  # cannot improve on the best feasible multiset
            if gamma - cfg.sigma * hourly * cfg.period_hours <= theta_to_beat:
                return  # cannot beat the incumbent selection either
            if capacity >= total - _EPS:
                cluster = self._try_pack(counts, demands)
                if cluster is not None:
                    best_cost = hourly * cfg.period_hours
                    best_cluster = cluster
                # Feasible-or-not, adding more VMs only raises cost.
                # Keep searching siblings, not children.
            if i == len(classes):
                return
            c = classes[i]
            for n in range(limits[i] + 1):
                counts[i] = n
                rec(i + 1, capacity + n * c.total_capacity, hourly + n * c.hourly_price)
            counts[i] = 0

        rec(0, 0.0, 0.0)
        return best_cluster

    def _try_pack(
        self, counts: list[int], demands: Mapping[str, float]
    ) -> Optional[ClusterView]:
        """First-fit-decreasing pack of PE demands into the given multiset
        at integer-core granularity; None if infeasible."""
        cluster = ClusterView()
        views: list[VMView] = []
        for count, klass in zip(counts, self.catalog):
            for _ in range(count):
                views.append(cluster.new_vm(klass))
        if not views:
            return None
        # Fastest cores first minimizes rounding waste.
        views.sort(key=lambda vm: vm.vm_class.core_speed, reverse=True)

        for name, demand in sorted(
            demands.items(), key=lambda kv: kv[1], reverse=True
        ):
            remaining = demand
            placed_any = False
            for vm in views:
                if remaining <= _EPS and placed_any:
                    break
                if vm.free_cores == 0:
                    continue
                speed = vm.vm_class.core_speed
                need = math.ceil(max(remaining, _EPS) / speed - 1e-9)
                cores = min(need, vm.free_cores)
                vm.allocate(name, cores)
                remaining -= cores * speed
                placed_any = True
            if remaining > _EPS or not placed_any:
                return None
        return cluster
