"""Processing elements and their alternates (paper §3, Defs. 1–2).

A :class:`ProcessingElement` (PE) is a long-running task in a continuous
dataflow.  A *dynamic* dataflow equips every PE with one or more
:class:`Alternate` implementations; at any time exactly one alternate is
*active*.  Each alternate carries the three metrics from Def. 2:

``value``
    The user-defined value function output ``f(p_i^j)`` (e.g. an F1 score
    for a classifier PE).  The *relative* value ``γ`` is derived by
    normalizing against the best alternate of the same PE.
``cost``
    Core-seconds needed to process one message on a *standard* CPU core
    (``π = 1``).
``selectivity``
    Output messages produced per input message consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = ["Alternate", "ProcessingElement", "pe"]


@dataclass(frozen=True)
class Alternate:
    """One implementation choice for a processing element.

    Parameters
    ----------
    name:
        Identifier, unique within its PE.
    value:
        Raw user-defined value ``f(p) > 0`` of this implementation.
    cost:
        Core-seconds per message on a standard core; must be positive.
    selectivity:
        Output/input message ratio; must be positive.
    """

    name: str
    value: float
    cost: float
    selectivity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alternate name must be non-empty")
        if self.value <= 0:
            raise ValueError(f"alternate {self.name!r}: value must be > 0")
        if self.cost <= 0:
            raise ValueError(f"alternate {self.name!r}: cost must be > 0")
        if self.selectivity <= 0:
            raise ValueError(f"alternate {self.name!r}: selectivity must be > 0")

    def scaled_cost(self, processing_power: float) -> float:
        """Seconds to process one message on a core of normalized power
        ``processing_power`` (paper §4: ``c' = c / π``)."""
        if processing_power <= 0:
            raise ValueError("processing power must be positive")
        return self.cost / processing_power


class ProcessingElement:
    """A named vertex of a dynamic dataflow with ≥1 alternates.

    The PE itself does not know its graph position; edges live on
    :class:`repro.dataflow.graph.DynamicDataflow`.

    Parameters
    ----------
    name:
        Unique PE identifier within the dataflow.
    alternates:
        Non-empty sequence of :class:`Alternate`; names must be unique.
    """

    def __init__(self, name: str, alternates: Sequence[Alternate]) -> None:
        if not name:
            raise ValueError("PE name must be non-empty")
        if not alternates:
            raise ValueError(f"PE {name!r} needs at least one alternate")
        names = [a.name for a in alternates]
        if len(set(names)) != len(names):
            raise ValueError(f"PE {name!r} has duplicate alternate names: {names}")
        self.name = name
        self._alternates: tuple[Alternate, ...] = tuple(alternates)
        self._by_name = {a.name: a for a in self._alternates}
        self._max_value = max(a.value for a in self._alternates)

    # -- access -------------------------------------------------------------

    @property
    def alternates(self) -> tuple[Alternate, ...]:
        """All alternates, in declaration order."""
        return self._alternates

    def __iter__(self) -> Iterator[Alternate]:
        return iter(self._alternates)

    def __len__(self) -> int:
        return len(self._alternates)

    def __repr__(self) -> str:
        return f"<PE {self.name!r} ×{len(self._alternates)} alternates>"

    def alternate(self, name: str) -> Alternate:
        """Look up an alternate by name.

        Raises ``KeyError`` with a helpful message when absent.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"PE {self.name!r} has no alternate {name!r}; "
                f"known: {sorted(self._by_name)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- Def. 2 metrics -------------------------------------------------------

    def relative_value(self, alternate: Alternate | str) -> float:
        """Relative value ``γ = f(p) / max_j f(p^j)`` in ``(0, 1]``."""
        if isinstance(alternate, str):
            alternate = self.alternate(alternate)
        return alternate.value / self._max_value

    @property
    def best_alternate(self) -> Alternate:
        """The alternate with the maximum raw value (γ = 1)."""
        return max(self._alternates, key=lambda a: a.value)

    @property
    def worst_alternate(self) -> Alternate:
        """The alternate with the minimum raw value."""
        return min(self._alternates, key=lambda a: a.value)

    @property
    def cheapest_alternate(self) -> Alternate:
        """The alternate with the lowest processing cost."""
        return min(self._alternates, key=lambda a: a.cost)

    def ranked_by_value_density(self) -> list[Alternate]:
        """Alternates sorted by γ/cost descending (Alg. 1 ranking)."""
        return sorted(
            self._alternates,
            key=lambda a: self.relative_value(a) / a.cost,
            reverse=True,
        )


def pe(
    name: str,
    *,
    alternates: Optional[Sequence[Alternate]] = None,
    value: float = 1.0,
    cost: float = 1.0,
    selectivity: float = 1.0,
) -> ProcessingElement:
    """Convenience constructor for a PE.

    With ``alternates`` given, builds a multi-alternate PE; otherwise a
    single-alternate PE named ``<name>.default`` with the scalar metrics.
    """
    if alternates is None:
        alternates = [
            Alternate(
                name=f"{name}.default",
                value=value,
                cost=cost,
                selectivity=selectivity,
            )
        ]
    return ProcessingElement(name, alternates)
