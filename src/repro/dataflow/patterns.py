"""Edge semantics for dataflow ports (paper §3).

The paper assumes, without loss of generality, *and-split* semantics for
edges leaving the same output port (messages are duplicated on every
outgoing edge) and *multi-merge* semantics for edges entering the same
input port (messages from all incoming edges are interleaved).  We model
those two as the defaults and additionally provide the other patterns the
paper cites from the workflow-patterns literature so users can compose
richer graphs.

The patterns matter for *rate propagation*: given a PE's output message
rate, each pattern defines the rate observed on each outgoing edge, and
given rates on incoming edges, the rate arriving at the PE.
"""

from __future__ import annotations

import enum
from typing import Sequence

__all__ = ["SplitPattern", "MergePattern", "split_rates", "merge_rate"]


class SplitPattern(enum.Enum):
    """How messages on an output port map onto multiple outgoing edges."""

    #: Duplicate every message on every outgoing edge (paper default).
    AND_SPLIT = "and-split"
    #: Each message goes to exactly one edge, round-robin (load sharing).
    ROUND_ROBIN = "round-robin"
    #: Each message goes to exactly one edge chosen by content; modelled as
    #: an even probabilistic split for rate purposes.
    CHOICE = "choice"


class MergePattern(enum.Enum):
    """How messages on multiple incoming edges combine at an input port."""

    #: Interleave messages from all edges (paper default).
    MULTI_MERGE = "multi-merge"
    #: Wait for one message from *every* edge, emit a single joined unit.
    SYNCHRONIZE = "synchronize"


def split_rates(
    pattern: SplitPattern, output_rate: float, n_edges: int
) -> list[float]:
    """Per-edge message rates for ``output_rate`` leaving a port.

    Parameters
    ----------
    pattern:
        The split semantics.
    output_rate:
        Messages/second emitted on the port (must be ≥ 0).
    n_edges:
        Number of outgoing edges on the port (must be ≥ 1).
    """
    if output_rate < 0:
        raise ValueError("output rate must be non-negative")
    if n_edges < 1:
        raise ValueError("a port needs at least one outgoing edge")
    if pattern is SplitPattern.AND_SPLIT:
        return [output_rate] * n_edges
    # ROUND_ROBIN and CHOICE both spread the rate evenly in expectation.
    return [output_rate / n_edges] * n_edges


def merge_rate(pattern: MergePattern, edge_rates: Sequence[float]) -> float:
    """Aggregate rate arriving at a port from its incoming edges."""
    if not edge_rates:
        raise ValueError("a port needs at least one incoming edge")
    if any(r < 0 for r in edge_rates):
        raise ValueError("edge rates must be non-negative")
    if pattern is MergePattern.MULTI_MERGE:
        return float(sum(edge_rates))
    # SYNCHRONIZE: the join completes at the rate of the slowest edge.
    return float(min(edge_rates))
