"""Dynamic dataflow application model (S2).

Processing elements with alternates (Def. 2), the dataflow DAG (Def. 1),
and QoS metrics Γ (Def. 3) and Ω (Def. 4).
"""

from .graph import AlternateSelection, CycleError, DynamicDataflow, Edge
from .metrics import (
    FlowState,
    IntervalMetrics,
    MetricsTimeline,
    constrained_rates,
    relative_application_throughput,
    relative_pe_throughputs,
)
from .patterns import MergePattern, SplitPattern, merge_rate, split_rates
from .pe import Alternate, ProcessingElement, pe

__all__ = [
    "Alternate",
    "AlternateSelection",
    "CycleError",
    "DynamicDataflow",
    "Edge",
    "FlowState",
    "IntervalMetrics",
    "MergePattern",
    "MetricsTimeline",
    "ProcessingElement",
    "SplitPattern",
    "constrained_rates",
    "merge_rate",
    "pe",
    "relative_application_throughput",
    "relative_pe_throughputs",
    "split_rates",
]
