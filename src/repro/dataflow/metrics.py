"""Application QoS metrics (paper §3, Defs. 3–4, and §6 aggregates).

Two complementary QoS dimensions:

* **Normalized application value Γ(t)** — how good the active alternates
  are, averaged over the PEs (Def. 3, implemented on the graph as
  :meth:`repro.dataflow.graph.DynamicDataflow.application_value`).
* **Relative application throughput Ω(t)** — the fraction of achievable
  output the dataflow actually delivers, treating the dataflow as a black
  box from input PEs to output PEs (Def. 4).

This module computes capacity-constrained steady-state rates, per-PE
relative throughputs (used by ``GetNextPE`` to find bottlenecks), the
application-level Ω, and provides :class:`IntervalMetrics` /
:class:`MetricsTimeline` records used by the optimization bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .graph import AlternateSelection, DynamicDataflow
from .patterns import MergePattern, SplitPattern, merge_rate, split_rates

__all__ = [
    "FlowState",
    "constrained_rates",
    "relative_pe_throughputs",
    "relative_application_throughput",
    "IntervalMetrics",
    "MetricsTimeline",
]


@dataclass(frozen=True)
class FlowState:
    """Steady-state flow solution for one configuration.

    Attributes
    ----------
    arrivals:
        Messages/second arriving at each PE (post-merge).
    processed:
        Messages/second actually processed (min of arrival and capacity).
    outputs:
        Messages/second emitted (= processed × selectivity).
    ideal_outputs:
        Output rates with infinite capacity everywhere.
    """

    arrivals: Mapping[str, float]
    processed: Mapping[str, float]
    outputs: Mapping[str, float]
    ideal_outputs: Mapping[str, float]


def constrained_rates(
    dataflow: DynamicDataflow,
    selection: AlternateSelection,
    input_rates: Mapping[str, float],
    capacities: Mapping[str, float],
) -> FlowState:
    """Propagate rates through the DAG under per-PE service capacities.

    Parameters
    ----------
    capacities:
        Sustainable processing rate (messages/second) per PE, e.g.
        ``Σ_cores π_core / c_alt`` for its current allocation.  PEs missing
        from the mapping are treated as capacity 0 (unallocated).

    Notes
    -----
    The model is a steady-state fluid approximation: each PE forwards
    ``min(arrival, capacity) · selectivity``.  Backlogged messages are
    accounted by the execution engine, not here.
    """
    ideal = dataflow.ideal_rates(selection, input_rates)  # validates

    arrivals: dict[str, float] = {}
    processed: dict[str, float] = {}
    outputs: dict[str, float] = {}
    edge_rate: dict[tuple[str, str], float] = {}

    # The compiled plan prefetches each node's structure; the paper-
    # default patterns (multi-merge, and-split) are inlined because this
    # is the adaptation loop's innermost evaluation.  The float math is
    # identical to the uncompiled traversal, term for term.
    for n, is_input, preds, merge_pat, succs, split_pat, sel_of in (
        dataflow.compiled_flow_plan()
    ):
        external = float(input_rates.get(n, 0.0)) if is_input else 0.0
        arrival = external
        if preds:
            incoming = [edge_rate[(p, n)] for p in preds]
            if merge_pat is MergePattern.MULTI_MERGE:
                arrival += float(sum(incoming))
            else:
                arrival += merge_rate(merge_pat, incoming)
        capacity = max(0.0, float(capacities.get(n, 0.0)))
        served = min(arrival, capacity)
        out = served * sel_of[selection[n]]

        arrivals[n] = arrival
        processed[n] = served
        outputs[n] = out

        if succs:
            if split_pat is SplitPattern.AND_SPLIT:
                for m in succs:
                    edge_rate[(n, m)] = out
            else:
                rates = split_rates(split_pat, out, len(succs))
                for m, r in zip(succs, rates):
                    edge_rate[(n, m)] = r

    return FlowState(
        arrivals=arrivals,
        processed=processed,
        outputs=outputs,
        ideal_outputs={n: out for n, (_, out) in ideal.items()},
    )


def relative_pe_throughputs(flow: FlowState) -> dict[str, float]:
    """Per-PE relative throughput Ω_i = actual output / ideal output.

    A PE with zero ideal output (no traffic routed to it) is defined as
    fully served (Ω_i = 1) so it never appears as a bottleneck.
    """
    out: dict[str, float] = {}
    for n, ideal in flow.ideal_outputs.items():
        if ideal <= 0:
            out[n] = 1.0
        else:
            out[n] = min(1.0, flow.outputs[n] / ideal)
    return out


def relative_application_throughput(
    dataflow: DynamicDataflow, flow: FlowState
) -> float:
    """Def. 4: Ω = (Σ_{i ∈ O} Ω_i) / |O| over the output PEs."""
    per_pe = relative_pe_throughputs(flow)
    return sum(per_pe[o] for o in dataflow.outputs) / len(dataflow.outputs)


@dataclass(frozen=True)
class IntervalMetrics:
    """QoS and cost observed over one optimization interval."""

    #: Interval start time (seconds).
    t: float
    #: Normalized application value Γ(t) ∈ (0, 1].
    value: float
    #: Relative application throughput Ω(t) ∈ [0, 1].
    throughput: float
    #: Cumulative dollar cost μ[t] of all VM instances up to interval end.
    cumulative_cost: float
    #: Messages delivered at output PEs during the interval.
    delivered: float = 0.0
    #: Messages that would have been delivered with infinite capacity.
    deliverable: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.throughput <= 1.0 + 1e-9:
            raise ValueError(f"throughput {self.throughput} outside [0, 1]")
        if self.cumulative_cost < 0:
            raise ValueError("cost must be non-negative")


class MetricsTimeline:
    """Accumulates per-interval metrics and produces §6 aggregates.

    The paper's optimization period ``T`` is a sequence of equal-length
    intervals; Ω̄ and Γ̄ are plain means over the intervals, and the total
    cost μ is the cumulative cost at the final interval.
    """

    def __init__(self) -> None:
        self._records: list[IntervalMetrics] = []

    def record(self, metrics: IntervalMetrics) -> None:
        """Append one interval's metrics (time must be non-decreasing)."""
        if self._records and metrics.t < self._records[-1].t:
            raise ValueError(
                f"interval at t={metrics.t} precedes last recorded "
                f"t={self._records[-1].t}"
            )
        self._records.append(metrics)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> tuple[IntervalMetrics, ...]:
        return tuple(self._records)

    @property
    def mean_value(self) -> float:
        """Γ̄ — average normalized application value over the period."""
        self._require_data()
        return sum(r.value for r in self._records) / len(self._records)

    @property
    def mean_throughput(self) -> float:
        """Ω̄ — average relative application throughput over the period."""
        self._require_data()
        return sum(r.throughput for r in self._records) / len(self._records)

    @property
    def total_cost(self) -> float:
        """μ — cumulative dollar cost at the end of the period."""
        self._require_data()
        return self._records[-1].cumulative_cost

    def objective(self, sigma: float) -> float:
        """Θ = Γ̄ − σ·μ for the given cost/value equivalence ``sigma``."""
        return self.mean_value - sigma * self.total_cost

    def meets_constraint(self, omega_min: float, epsilon: float = 0.0) -> bool:
        """Whether Ω̄ ≥ Ω̂ − ε (the paper's necessary condition)."""
        return self.mean_throughput >= omega_min - epsilon

    def _require_data(self) -> None:
        if not self._records:
            raise ValueError("no intervals recorded yet")
