"""The dynamic dataflow DAG (paper §3, Defs. 1–3).

A :class:`DynamicDataflow` is a directed acyclic graph of
:class:`~repro.dataflow.pe.ProcessingElement` vertices with designated
input and output PE sets.  This module provides construction and
validation, graph traversals used by the heuristics (forward BFS from the
inputs for deployment ordering, reverse BFS from the outputs for the
global heuristic's downstream-cost dynamic program), ideal rate
propagation, and the normalized application value Γ.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .patterns import MergePattern, SplitPattern, merge_rate, split_rates
from .pe import Alternate, ProcessingElement

__all__ = ["Edge", "DynamicDataflow", "CycleError", "AlternateSelection"]

#: A selection maps PE name → active alternate name.
AlternateSelection = Mapping[str, str]


class CycleError(ValueError):
    """Raised when the dataflow contains a directed cycle."""


@dataclass(frozen=True)
class Edge:
    """A directed dataflow edge between two PEs."""

    source: str
    sink: str

    def __post_init__(self) -> None:
        if self.source == self.sink:
            raise ValueError(f"self-loop on {self.source!r} is not allowed")


class DynamicDataflow:
    """A continuous dataflow with alternates (the quadruple ``(P, E, I, O)``).

    Parameters
    ----------
    pes:
        The processing elements; names must be unique.
    edges:
        Directed edges as ``(source, sink)`` pairs or :class:`Edge`.
    inputs / outputs:
        Optional explicit input/output PE name sets.  When omitted they
        default to sources (no in-edges) and sinks (no out-edges).
    split / merge:
        Optional per-PE overrides of the output-port split pattern and
        input-port merge pattern (paper defaults: and-split, multi-merge).

    Raises
    ------
    CycleError
        If the edges contain a directed cycle.
    ValueError
        On dangling edges, duplicate PEs, empty input/output sets, or PEs
        unreachable from the inputs.
    """

    def __init__(
        self,
        pes: Sequence[ProcessingElement],
        edges: Iterable[Edge | tuple[str, str]],
        *,
        inputs: Optional[Iterable[str]] = None,
        outputs: Optional[Iterable[str]] = None,
        split: Optional[Mapping[str, SplitPattern]] = None,
        merge: Optional[Mapping[str, MergePattern]] = None,
    ) -> None:
        names = [p.name for p in pes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate PE names: {sorted(names)}")
        self._pes: dict[str, ProcessingElement] = {p.name: p for p in pes}

        self._edges: list[Edge] = []
        self._succ: dict[str, list[str]] = {n: [] for n in names}
        self._pred: dict[str, list[str]] = {n: [] for n in names}
        seen: set[tuple[str, str]] = set()
        for e in edges:
            edge = e if isinstance(e, Edge) else Edge(*e)
            for endpoint in (edge.source, edge.sink):
                if endpoint not in self._pes:
                    raise ValueError(f"edge {edge} references unknown PE {endpoint!r}")
            if (edge.source, edge.sink) in seen:
                raise ValueError(f"duplicate edge {edge}")
            seen.add((edge.source, edge.sink))
            self._edges.append(edge)
            self._succ[edge.source].append(edge.sink)
            self._pred[edge.sink].append(edge.source)

        self._topo = self._toposort()

        derived_inputs = [n for n in names if not self._pred[n]]
        derived_outputs = [n for n in names if not self._succ[n]]
        self._inputs = tuple(inputs) if inputs is not None else tuple(derived_inputs)
        self._outputs = (
            tuple(outputs) if outputs is not None else tuple(derived_outputs)
        )
        if not self._inputs:
            raise ValueError("dataflow must have at least one input PE")
        if not self._outputs:
            raise ValueError("dataflow must have at least one output PE")
        for n in self._inputs + self._outputs:
            if n not in self._pes:
                raise ValueError(f"designated input/output {n!r} is not a PE")

        self._split = {n: SplitPattern.AND_SPLIT for n in names}
        if split:
            for n, pat in split.items():
                if n not in self._pes:
                    raise ValueError(f"split override for unknown PE {n!r}")
                self._split[n] = pat
        self._merge = {n: MergePattern.MULTI_MERGE for n in names}
        if merge:
            for n, pat in merge.items():
                if n not in self._pes:
                    raise ValueError(f"merge override for unknown PE {n!r}")
                self._merge[n] = pat

        #: Memo for :meth:`ideal_rates` — the adaptation loop re-evaluates
        #: candidate deployments against a fixed (selection, input rates)
        #: pair many times per interval.
        self._ideal_cache: dict[tuple, dict[str, tuple[float, float]]] = {}
        #: Lazily compiled traversal plan for rate propagation (see
        #: :meth:`compiled_flow_plan`).
        self._flow_plan: Optional[list[tuple]] = None

        unreachable = set(names) - set(self.forward_bfs_order())
        if unreachable:
            raise ValueError(
                f"PEs unreachable from the inputs: {sorted(unreachable)}"
            )

    # -- basic access ---------------------------------------------------------

    @property
    def pes(self) -> tuple[ProcessingElement, ...]:
        """All PEs in insertion order."""
        return tuple(self._pes.values())

    @property
    def pe_names(self) -> tuple[str, ...]:
        return tuple(self._pes)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(self._edges)

    @property
    def inputs(self) -> tuple[str, ...]:
        """Names of the input PEs (set ``I``)."""
        return self._inputs

    @property
    def outputs(self) -> tuple[str, ...]:
        """Names of the output PEs (set ``O``)."""
        return self._outputs

    def __len__(self) -> int:
        return len(self._pes)

    def __contains__(self, name: str) -> bool:
        return name in self._pes

    def __getitem__(self, name: str) -> ProcessingElement:
        try:
            return self._pes[name]
        except KeyError:
            raise KeyError(
                f"no PE named {name!r}; known: {sorted(self._pes)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"<DynamicDataflow |P|={len(self._pes)} |E|={len(self._edges)} "
            f"I={list(self._inputs)} O={list(self._outputs)}>"
        )

    def successors(self, name: str) -> tuple[str, ...]:
        return tuple(self._succ[self[name].name])

    def predecessors(self, name: str) -> tuple[str, ...]:
        return tuple(self._pred[self[name].name])

    def split_pattern(self, name: str) -> SplitPattern:
        return self._split[self[name].name]

    def merge_pattern(self, name: str) -> MergePattern:
        return self._merge[self[name].name]

    # -- traversals -------------------------------------------------------------

    def _toposort(self) -> list[str]:
        indeg = {n: len(p) for n, p in self._pred.items()}
        # Deterministic order: seed with declaration order.
        ready = deque(n for n in self._pes if indeg[n] == 0)
        order: list[str] = []
        while ready:
            n = ready.popleft()
            order.append(n)
            for m in self._succ[n]:
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        if len(order) != len(self._pes):
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise CycleError(f"dataflow contains a cycle through {cyclic}")
        return order

    def topological_order(self) -> list[str]:
        """PE names in a deterministic topological order."""
        return list(self._topo)

    def forward_bfs_order(self) -> list[str]:
        """Breadth-first order rooted at the input PEs (Alg. 1's
        ``GetNextPE`` initial ordering)."""
        seen: set[str] = set()
        order: list[str] = []
        frontier = deque(self._inputs)
        while frontier:
            n = frontier.popleft()
            if n in seen:
                continue
            seen.add(n)
            order.append(n)
            frontier.extend(m for m in self._succ[n] if m not in seen)
        return order

    def reverse_bfs_order(self) -> list[str]:
        """Breadth-first order rooted at the output PEs following edges
        backwards (used by the global downstream-cost DP)."""
        seen: set[str] = set()
        order: list[str] = []
        frontier = deque(self._outputs)
        while frontier:
            n = frontier.popleft()
            if n in seen:
                continue
            seen.add(n)
            order.append(n)
            frontier.extend(m for m in self._pred[n] if m not in seen)
        return order

    # -- alternates -------------------------------------------------------------

    def validate_selection(self, selection: AlternateSelection) -> None:
        """Check that ``selection`` names one valid alternate per PE."""
        missing = set(self._pes) - set(selection)
        if missing:
            raise ValueError(f"selection missing PEs: {sorted(missing)}")
        for pe_name, alt_name in selection.items():
            self[pe_name].alternate(alt_name)  # raises KeyError if absent

    def active_alternate(
        self, selection: AlternateSelection, pe_name: str
    ) -> Alternate:
        """The alternate selected for ``pe_name``."""
        return self[pe_name].alternate(selection[pe_name])

    def default_selection(self) -> dict[str, str]:
        """Selection picking every PE's best-value alternate (Γ = 1)."""
        return {p.name: p.best_alternate.name for p in self.pes}

    def cheapest_selection(self) -> dict[str, str]:
        """Selection picking every PE's lowest-cost alternate."""
        return {p.name: p.cheapest_alternate.name for p in self.pes}

    def all_selections(self) -> Iterable[dict[str, str]]:
        """Iterate over the full cross-product of alternate selections.

        Exponential; intended only for the brute-force baseline on small
        graphs.
        """
        names = list(self._pes)

        def rec(i: int, acc: dict[str, str]):
            if i == len(names):
                yield dict(acc)
                return
            for alt in self._pes[names[i]].alternates:
                acc[names[i]] = alt.name
                yield from rec(i + 1, acc)
            acc.pop(names[i], None)

        yield from rec(0, {})

    # -- Def. 3: normalized application value ------------------------------------

    def application_value(self, selection: AlternateSelection) -> float:
        """Normalized application value Γ ∈ (0, 1] for a selection.

        Γ averages the relative values γ of the active alternates, making
        value an additive property over the graph as in Def. 3.
        """
        self.validate_selection(selection)
        total = sum(
            self[p].relative_value(selection[p]) for p in self._pes
        )
        return total / len(self._pes)

    def value_bounds(self) -> tuple[float, float]:
        """(min, max) achievable Γ over all selections."""
        lo = sum(
            p.relative_value(p.worst_alternate) for p in self.pes
        ) / len(self._pes)
        return lo, 1.0

    # -- rate propagation ---------------------------------------------------------

    def compiled_flow_plan(self) -> list[tuple]:
        """Topological traversal plan with per-node structure prefetched.

        One tuple per PE, in topological order:
        ``(name, is_input, preds, merge_pat, succs, split_pat,
        selectivities)`` where ``selectivities`` maps alternate name →
        selectivity.  The graph is immutable after construction, so the
        plan is built once; rate-propagation hot loops (the adaptation
        stages call :func:`~repro.dataflow.metrics.constrained_rates`
        once per candidate deployment) iterate it instead of paying one
        method call per structural lookup per node per evaluation.
        """
        plan = self._flow_plan
        if plan is None:
            plan = [
                (
                    n,
                    n in self._inputs,
                    tuple(self._pred[n]),
                    self._merge[n],
                    tuple(self._succ[n]),
                    self._split[n],
                    {
                        a.name: a.selectivity
                        for a in self._pes[n].alternates
                    },
                )
                for n in self._topo
            ]
            self._flow_plan = plan
        return plan

    def ideal_rates(
        self,
        selection: AlternateSelection,
        input_rates: Mapping[str, float],
    ) -> dict[str, tuple[float, float]]:
        """Steady-state (input, output) message rates per PE with infinite
        processing capacity.

        Parameters
        ----------
        selection:
            Active alternate per PE (determines selectivities).
        input_rates:
            External messages/second entering each input PE.

        Returns
        -------
        dict
            ``{pe_name: (arrival_rate, output_rate)}``.
        """
        key = (
            tuple(sorted(selection.items())),
            tuple(sorted(input_rates.items())),
        )
        cached = self._ideal_cache.get(key)
        if cached is not None:
            return dict(cached)

        self.validate_selection(selection)
        for n in self._inputs:
            if n not in input_rates:
                raise ValueError(f"missing input rate for input PE {n!r}")

        arrivals: dict[str, float] = {n: 0.0 for n in self._pes}
        outputs: dict[str, float] = {}
        edge_rate: dict[tuple[str, str], float] = {}

        for n in self._topo:
            external = float(input_rates.get(n, 0.0)) if n in self._inputs else 0.0
            incoming = [edge_rate[(p, n)] for p in self._pred[n]]
            arrival = external
            if incoming:
                arrival += merge_rate(self._merge[n], incoming)
            arrivals[n] = arrival
            out = arrival * self.active_alternate(selection, n).selectivity
            outputs[n] = out
            succ = self._succ[n]
            if succ:
                rates = split_rates(self._split[n], out, len(succ))
                for m, r in zip(succ, rates):
                    edge_rate[(n, m)] = r

        result = {n: (arrivals[n], outputs[n]) for n in self._pes}
        if len(self._ideal_cache) >= 256:
            self._ideal_cache.clear()
        self._ideal_cache[key] = result
        return dict(result)

    # -- global heuristic support ---------------------------------------------------

    def downstream_costs(
        self, selection: AlternateSelection
    ) -> dict[str, float]:
        """Per-PE downstream cost for the *global* strategy (Table 1).

        For PE ``i`` with active alternate ``a``:

        ``dc(i) = a.cost + a.selectivity · Σ_{j ∈ succ(i)} w_j · dc(j)``

        where the weight ``w_j`` follows the split pattern (1 for
        and-split since messages are duplicated; 1/|succ| for
        round-robin/choice).  Computed by dynamic programming over the
        reverse topological order, i.e. a reverse-BFS-rooted traversal from
        the output PEs as in the paper.
        """
        self.validate_selection(selection)
        dc: dict[str, float] = {}
        for n in reversed(self._topo):
            alt = self.active_alternate(selection, n)
            succ = self._succ[n]
            tail = 0.0
            if succ:
                weight = (
                    1.0
                    if self._split[n] is SplitPattern.AND_SPLIT
                    else 1.0 / len(succ)
                )
                tail = alt.selectivity * weight * sum(dc[m] for m in succ)
            dc[n] = alt.cost + tail
        return dc

    def downstream_cost_of(
        self,
        selection: AlternateSelection,
        pe_name: str,
        alternate: Alternate | str,
    ) -> float:
        """Downstream cost of ``pe_name`` if it ran ``alternate`` while the
        rest of the graph keeps ``selection``."""
        if isinstance(alternate, str):
            alternate = self[pe_name].alternate(alternate)
        probe = dict(selection)
        probe[pe_name] = alternate.name
        return self.downstream_costs(probe)[pe_name]
