"""Load test for the serve daemon → ``BENCH_serve.json``.

Boots an in-process :class:`repro.serve.ServeDaemon` against a fresh
temporary cache directory and drives it over real HTTP with concurrent
clients through four phases:

1. **cold** — seed the scenario pool through the worker pool; measures
   ``cold_rps`` (simulation-bound, sets the baseline the warm tier is
   beating).
2. **warm** — re-request the seeded pool; every answer must come from
   the serving tier (LRU/disk).  Measures ``warm_rps``, the warm-path
   ``warm_p50_ms`` / ``warm_p95_ms`` (the server's own ``elapsed_ms``:
   parse → tier lookup → serialize, the latency the serving engine
   controls), and client-side ``warm_p50_wall_ms`` (adds per-request
   TCP setup and the benchmark harness's own thread contention).
3. **delta** — request single-field billing variants of the seeded
   scenarios; answers must come from the delta index *without
   re-simulation*.  Measures ``delta_hit_ratio``.
4. **mixed** — concurrent clients issue a warm-dominated warm/cold mix;
   measures ``mixed_rps`` (the ≥200 req/s acceptance gate).

Every response is checked for cross-request leaks: the content hash a
scenario is served under must be stable across repeats, distinct per
scenario, and the row must echo the submitted scenario's fields
(rate, seed, policy, billing model).  Any 5xx fails the run.

``--smoke`` runs a scaled-down pass with the same assertions and skips
the BENCH append — the CI service job uses it as the liveness +
isolation gate.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--clients N]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient, ServeDaemon, ServerBusy  # noqa: E402

import bench_common  # noqa: E402

SEED = 7
POLICY = "static-local"

#: Billing variants answered through the delta index: each differs from
#: a seeded base scenario in exactly one non-structural field.
DELTA_VARIANTS = (
    {"billing_discount": 0.25},            # inert under on_demand_hourly
    {"billing_model": "reserved"},         # ledger replay
    {"billing_model": "per_second"},       # ledger replay
    {"billing_model": "sustained_use"},    # ledger replay
)


def _pool(n: int) -> list[dict]:
    return [
        {
            "rate": 2.0 + 0.5 * i,
            "rate_kind": "wave",
            "variability": "both",
            "seed": SEED,
            "period": 300.0,
        }
        for i in range(n)
    ]


class LeakChecker:
    """Asserts responses never bleed between scenarios or requests."""

    def __init__(self) -> None:
        self._keys: dict[str, str] = {}
        self._lock = threading.Lock()
        self.checked = 0

    def check(self, scenario: dict, response: dict) -> None:
        for result in response["results"]:
            row = result["row"]
            assert row["rate"] == scenario["rate"], (
                f"row echoes rate {row['rate']} for submitted "
                f"{scenario['rate']}: cross-request leak"
            )
            assert row["seed"] == scenario["seed"]
            assert row["policy"] == result["policy"]
            expected_model = scenario.get("billing_model", "on_demand_hourly")
            assert row["billing_model"] == expected_model
            ident = f"{sorted(scenario.items())}|{result['policy']}"
            with self._lock:
                seen = self._keys.setdefault(ident, result["key"])
                self.checked += 1
            assert seen == result["key"], (
                f"content hash changed across repeats for {ident}: "
                "fingerprint leak"
            )
        with self._lock:
            n_keys = len(set(self._keys.values()))
            n_cells = len(self._keys)
        assert n_keys == n_cells, "distinct cells share a content hash"


def _drive(
    client: ServeClient,
    scenarios: list[dict],
    checker: LeakChecker,
    latencies: list[tuple[float, float]],
    errors: list[str],
    tiers: list[str],
) -> None:
    for scenario in scenarios:
        t0 = time.perf_counter()
        try:
            resp = client.run(scenario, [POLICY], retries=8)
        except ServerBusy:
            errors.append("429-exhausted")
            continue
        except Exception as exc:  # noqa: BLE001 — tally, keep driving
            errors.append(f"{type(exc).__name__}: {exc}")
            continue
        wall_ms = (time.perf_counter() - t0) * 1e3
        latencies.append((wall_ms, resp["elapsed_ms"]))
        checker.check(scenario, resp)
        tiers.extend(r["tier"] for r in resp["results"])


def _phase(
    client_url: str,
    scenarios: list[dict],
    checker: LeakChecker,
    clients: int,
) -> tuple[float, list[tuple[float, float]], list[str], list[str]]:
    """Run one phase with ``clients`` concurrent drivers; returns
    (wall_s, [(wall_ms, server_ms), ...], tiers, errors)."""
    latencies: list[tuple[float, float]] = []
    errors: list[str] = []
    tiers: list[str] = []
    shards = [scenarios[i::clients] for i in range(clients)]
    threads = [
        threading.Thread(
            target=_drive,
            args=(
                ServeClient(client_url),
                shard,
                checker,
                latencies,
                errors,
                tiers,
            ),
        )
        for shard in shards
        if shard
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, latencies, tiers, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="scaled-down CI pass: same assertions, no BENCH append",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads for warm/mixed phases (default 8)",
    )
    parser.add_argument(
        "--warm-repeats", type=int, default=None,
        help="warm-phase repetitions of the pool (default 40; smoke 5)",
    )
    args = parser.parse_args(argv)

    n_pool = 4 if args.smoke else 8
    warm_repeats = (
        args.warm_repeats
        if args.warm_repeats is not None
        else (5 if args.smoke else 40)
    )
    mixed_repeats = 3 if args.smoke else 25

    pool_scenarios = _pool(n_pool)
    checker = LeakChecker()
    metrics: dict[str, float] = {}

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        os.environ.pop("REPRO_CACHE", None)
        from repro.experiments import cache as result_cache

        result_cache.enable()
        daemon = ServeDaemon(workers=2, queue_depth=64).start()
        client = ServeClient(daemon.url)
        try:
            assert client.health()["ok"]

            # -- phase 1: cold ------------------------------------------------
            wall, lat, tiers, errors = _phase(
                daemon.url, pool_scenarios, checker, clients=2
            )
            assert not errors, f"cold phase errors: {errors[:3]}"
            metrics["cold_rps"] = len(lat) / wall
            print(
                f"cold : {len(lat)} req in {wall:.2f}s "
                f"({metrics['cold_rps']:.1f} req/s)"
            )

            # -- phase 2: warm ------------------------------------------------
            warm_set = pool_scenarios * warm_repeats
            wall, lat, tiers, errors = _phase(
                daemon.url, warm_set, checker, clients=args.clients
            )
            assert not errors, f"warm phase errors: {errors[:3]}"
            assert all(t in ("lru", "disk") for t in tiers), (
                f"warm phase left the serving tier: {set(tiers)}"
            )
            server_ms = [s for _, s in lat]
            metrics["warm_rps"] = len(lat) / wall
            metrics["warm_p50_ms"] = statistics.median(server_ms)
            metrics["warm_p95_ms"] = statistics.quantiles(server_ms, n=20)[-1]
            metrics["warm_p50_wall_ms"] = statistics.median(
                [w for w, _ in lat]
            )
            print(
                f"warm : {len(lat)} req in {wall:.2f}s "
                f"({metrics['warm_rps']:.0f} req/s, "
                f"p50 {metrics['warm_p50_ms']:.2f} ms, "
                f"p95 {metrics['warm_p95_ms']:.2f} ms, "
                f"wall p50 {metrics['warm_p50_wall_ms']:.2f} ms)"
            )

            # -- phase 3: delta -----------------------------------------------
            delta_set = [
                dict(base, **variant)
                for base in pool_scenarios
                for variant in DELTA_VARIANTS
            ]
            wall, lat, tiers, errors = _phase(
                daemon.url, delta_set, checker, clients=args.clients
            )
            assert not errors, f"delta phase errors: {errors[:3]}"
            hits = sum(1 for t in tiers if t in ("delta", "lru", "disk"))
            metrics["delta_hit_ratio"] = hits / len(tiers) if tiers else 0.0
            assert metrics["delta_hit_ratio"] == 1.0, (
                f"delta requests re-simulated: {set(tiers)}"
            )
            print(
                f"delta: {len(lat)} req in {wall:.2f}s "
                f"(hit ratio {metrics['delta_hit_ratio']:.2f}, "
                f"tiers {sorted(set(tiers))})"
            )

            # -- phase 4: mixed warm/cold -------------------------------------
            fresh = [
                dict(s, seed=SEED + 1) for s in pool_scenarios[: n_pool // 2]
            ]
            mixed = (pool_scenarios + delta_set) * mixed_repeats + fresh
            wall, lat, tiers, errors = _phase(
                daemon.url, mixed, checker, clients=args.clients
            )
            assert not errors, f"mixed phase errors: {errors[:3]}"
            metrics["mixed_rps"] = len(lat) / wall
            print(
                f"mixed: {len(lat)} req in {wall:.2f}s "
                f"({metrics['mixed_rps']:.0f} req/s, "
                f"{tiers.count('cold')} cold)"
            )

            stats = client.stats()
            assert stats["requests"].get("errors", 0) == 0, (
                f"server-side 5xx: {stats['requests']}"
            )
            print(
                f"leak checker: {checker.checked} responses verified, "
                f"{len(checker._keys)} distinct cells, 0 leaks"
            )
        finally:
            daemon.stop()
            os.environ.pop("REPRO_CACHE_DIR", None)

    if args.smoke:
        print("smoke pass OK (no BENCH append)")
        return 0

    assert metrics["warm_p50_ms"] < 5.0, (
        f"warm p50 {metrics['warm_p50_ms']:.2f} ms ≥ 5 ms gate"
    )
    assert metrics["mixed_rps"] >= 200.0, (
        f"mixed throughput {metrics['mixed_rps']:.0f} req/s < 200 req/s gate"
    )

    path = bench_common.bench_path("serve")
    bench_common.append_entry(
        path,
        "serve",
        metrics,
        meta={
            "host_cpus": os.cpu_count(),
            "seed": SEED,
            "policy": POLICY,
            "pool": n_pool,
            "clients": args.clients,
            "responses_checked": checker.checked,
        },
    )
    print(f"appended -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
