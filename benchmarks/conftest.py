"""Shared benchmark configuration.

Every ``test_bench_fig*`` benchmark regenerates one figure of the paper's
evaluation and prints the rows/series it plots.  By default the drivers
run in *fast* mode (shortened periods / fewer rates) so the whole suite
completes in a few minutes; set ``REPRO_BENCH_FULL=1`` to run the paper's
full-scale configuration (6 h periods, 10 h for the cost figures,
2–50 msg/s sweeps).

Rendered tables are also written to ``benchmarks/results/`` so the
EXPERIMENTS.md paper-vs-measured record can reference them.
"""

from __future__ import annotations

import os
import pathlib

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether to run the paper's full configuration."""
    return FULL


@pytest.fixture(scope="session")
def record_figure():
    """Persist a rendered figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, rendered: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")

    return _record
