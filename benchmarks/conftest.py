"""Shared benchmark configuration.

Every ``test_bench_fig*`` benchmark regenerates one figure of the paper's
evaluation and prints the rows/series it plots.  By default the drivers
run in *fast* mode (shortened periods / fewer rates) so the whole suite
completes in a few minutes; set ``REPRO_BENCH_FULL=1`` to run the paper's
full-scale configuration (6 h periods, 10 h for the cost figures,
2–50 msg/s sweeps).

Rendered tables are also written to ``benchmarks/results/`` so the
EXPERIMENTS.md paper-vs-measured record can reference them.  Each bench
header (and each recorded table) states the resolved sweep worker count
and the default scenario seed so a recorded number can always be traced
back to the exact configuration that produced it.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import cache as result_cache
from repro.experiments.parallel import resolve_jobs
from repro.util import perf

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Default scenario seed shared by the figure drivers (figures 4–9).
DEFAULT_SEED = 7

# Collect perf counters for the whole bench session so the headers can
# report result-cache hit/miss counts alongside jobs and seed.
perf.enable()


def bench_header() -> str:
    """One-line run context: workers, seed, host CPUs, scale, cache state."""
    counters = perf.snapshot()["counters"]
    cpus = os.cpu_count() or 1
    jobs = resolve_jobs(None)
    # parallel.sweep clamps to the core count, so a requested worker
    # count above it would only record fork overhead, not speedup.
    note = " (single core: sweeps run serially)" if cpus <= 1 < jobs else ""
    return (
        f"bench config: jobs={jobs} seed={DEFAULT_SEED} "
        f"host_cpus={cpus}{note} "
        f"scale={'full' if FULL else 'fast'} "
        f"cache={'on' if result_cache.enabled() else 'off'} "
        f"cache_hits={int(counters.get('cache.hits', 0))} "
        f"cache_misses={int(counters.get('cache.misses', 0))}"
    )


def pytest_report_header(config):
    return bench_header()


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Per-test cache directory: benchmarks must measure fresh runs, not
    rows another test (or a developer's repo-local cache) left behind."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(autouse=True)
def _print_bench_header(request):
    """Bracket every benchmark's captured output with the run context
    (the trailing line carries the test's cache hit/miss deltas)."""
    print(f"\n[{request.node.name}] {bench_header()}")
    yield
    print(f"[{request.node.name} done] {bench_header()}")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether to run the paper's full configuration."""
    return FULL


@pytest.fixture(scope="session")
def record_figure():
    """Persist a rendered figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, rendered: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(
            f"# {bench_header()}\n{rendered}\n", encoding="utf-8"
        )

    return _record
