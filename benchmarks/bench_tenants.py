"""Bench driver: multi-tenant fleet throughput → ``BENCH_tenants.json``.

Times an uncontended N-tenant fleet — N independent managed dataflows
sharing one provider — two ways and appends the ratio to the repo-root
``BENCH_tenants.json``:

- **serial**: N isolated ``run_policy`` simulations, one after another
  (the pre-S27 way to get N tenants' results);
- **shared kernel**: one ``TenantFleet`` advancing all N dataflows in
  lockstep through the structure-of-arrays batch engine, one vectorized
  tick per step.

The pools are unlimited so the shared kernel owes the serial loop exact
results: every per-tenant Θ/Ω/μ row must be bit-identical to the
isolated run's row (asserted; recorded as ``tenant_rows_identical``).
The headline metric is ``tenants_speedup`` — fleet wall time over the
serial loop's — with ``tenants_per_s`` for the absolute trajectory.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_tenants.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.tenants import TenantRow
from repro.experiments.runner import run_fleet
from repro.experiments.scenarios import multi_tenant_scenario, run_policy

import bench_common

SEED = 7


def _scenario(quick: bool):
    # Wavy rates + full variability keep every tenant's run genuinely
    # dynamic: on a constant rate with no variability the serial
    # baseline macro-steps the whole period in one jump and the
    # comparison measures nothing.
    return multi_tenant_scenario(
        n_tenants=32 if quick else 256,
        admission="free-for-all",
        seed=SEED,
        period=600.0 if quick else 1800.0,
        rate_kind="wave",
        variability="both",
        rate_lo=2.0,
        rate_hi=8.0,
        capacity_tightness=None,
    )


def run_tenants_bench(
    quick: bool = False,
    output: Optional[os.PathLike] = None,
    write: bool = True,
) -> dict:
    """Measure shared-kernel vs serial fleet throughput and record."""
    mt = _scenario(quick)
    n = mt.n_tenants

    t0 = time.perf_counter()
    serial_rows = [
        TenantRow.from_result(
            k, mt.tenant_rate(k), run_policy(mt.tenant_scenario(k), mt.policy)
        )
        for k in range(n)
    ]
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fleet = run_fleet(mt)
    fleet_s = time.perf_counter() - t0
    assert fleet.mode == "soa", f"fleet ran {fleet.mode}, expected soa"

    identical = [r.identity() for r in fleet.rows] == [
        r.identity() for r in serial_rows
    ]
    assert identical, "shared-kernel rows diverged from isolated runs"

    metrics = {
        "tenants": float(n),
        "serial_s": serial_s,
        "fleet_s": fleet_s,
        "tenants_per_s": n / fleet_s,
        "tenants_per_s_serial": n / serial_s,
        "tenants_speedup": serial_s / max(fleet_s, 1e-9),
    }
    meta = {
        "quick": quick,
        "seed": SEED,
        "host_cpus": os.cpu_count() or 1,
        "n_tenants": n,
        "policy": mt.policy,
        "rate_band": [mt.rate_lo, mt.rate_hi],
        "tenant_rows_identical": identical,
    }
    if write:
        path = output or bench_common.bench_path("tenants")
        bench_common.append_entry(path, "tenants", metrics, meta)
    return {"metrics": metrics, "meta": meta}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="32-tenant fleet (smoke test)")
    parser.add_argument("--output", default=None,
                        help="write to this file instead of "
                             "BENCH_tenants.json")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and print, do not record")
    args = parser.parse_args(argv)
    result = run_tenants_bench(
        quick=args.quick, output=args.output, write=not args.no_write
    )
    m = result["metrics"]
    print(
        f"tenants: n={m['tenants']:.0f} serial={m['serial_s']:.2f}s "
        f"fleet={m['fleet_s']:.2f}s "
        f"({m['tenants_per_s']:.1f} tenants/s, "
        f"speedup {m['tenants_speedup']:.2f}x)"
    )
    print(f"rows identical: {result['meta']['tenant_rows_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
