"""Bench driver: substrate throughput → ``BENCH_engine.json``.

Measures the raw speed of the layers every experiment rests on — the DES
kernel's event loop and the fluid executor's tick rate at two fleet
sizes — and appends the numbers to the repo-root ``BENCH_engine.json``
perf trajectory.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--no-write]

The pytest microbenchmarks in ``test_bench_engine_throughput.py`` measure
the same rigs interactively; this driver is the one that *records*.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.experiments import fig1_dataflow
from repro.sim import Environment
from repro.workloads import ConstantRate

import bench_common

#: Fleet sizes mirroring test_bench_engine_throughput.py.
SMALL_FLEET = 4
LARGE_FLEET = 80


def _kernel_events_per_s(n_events: int) -> float:
    env = Environment()

    def chain():
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(chain())
    t0 = time.perf_counter()
    env.run()
    return n_events / (time.perf_counter() - t0)


def _fluid_ticks_per_s(rate: float, n_vms: int, horizon: float) -> float:
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    df = fig1_dataflow()
    pes = list(df.pe_names)
    for i in range(n_vms):
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate(pes[i % len(pes)], 4)
    ex = FluidExecutor(
        env, df, provider, {"E1": ConstantRate(rate)},
        selection=df.default_selection(),
    )
    ex.sync()
    ex.start()
    t0 = time.perf_counter()
    env.run(until=horizon)
    elapsed = time.perf_counter() - t0
    stats = ex.roll_interval()
    assert stats.external_in["E1"] > 0, "engine processed no traffic"
    return horizon / elapsed


def run_engine_bench(
    quick: bool = False, output: Optional[os.PathLike] = None, write: bool = True
) -> dict:
    """Measure and (optionally) record engine throughput metrics."""
    n_events = 10_000 if quick else 100_000
    horizon = 300.0 if quick else 3600.0
    metrics = {
        "kernel_events_per_s": _kernel_events_per_s(n_events),
        "fluid_small_ticks_per_s": _fluid_ticks_per_s(
            5.0, SMALL_FLEET, horizon
        ),
        "fluid_large_ticks_per_s": _fluid_ticks_per_s(
            50.0, LARGE_FLEET, horizon
        ),
    }
    meta = {
        "quick": quick,
        "host_cpus": os.cpu_count() or 1,
        "small_fleet": SMALL_FLEET,
        "large_fleet": LARGE_FLEET,
        "horizon_s": horizon,
    }
    if write:
        path = output or bench_common.bench_path("engine")
        bench_common.append_entry(path, "engine", metrics, meta)
    return {"metrics": metrics, "meta": meta}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short horizons (smoke test)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure only; do not append to BENCH_engine.json")
    parser.add_argument("--output", default=None,
                        help="override the BENCH json path")
    args = parser.parse_args(argv)
    result = run_engine_bench(
        quick=args.quick, output=args.output, write=not args.no_write
    )
    for key, value in result["metrics"].items():
        print(f"{key:>28}: {value:12.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
