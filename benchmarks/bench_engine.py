"""Bench driver: substrate throughput → ``BENCH_engine.json``.

Measures the raw speed of the layers every experiment rests on — the DES
kernel's event loop, the fluid executor's tick rate at two fleet sizes,
and the per-interval latency of the runtime adaptation decision
(``decision_ns``, the §7 "heuristics must be cheap relative to the
interval" path) — and appends the numbers to the repo-root
``BENCH_engine.json`` perf trajectory.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--no-write]

The pytest microbenchmarks in ``test_bench_engine_throughput.py`` measure
the same rigs interactively; this driver is the one that *records*.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from typing import Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.core import AdaptationConfig, ClusterView, RuntimeAdaptation, Snapshot
from repro.engine import FluidExecutor
from repro.experiments import fig1_dataflow, scaled_dataflow
from repro.sim import Environment
from repro.workloads import ConstantRate

import bench_common

#: Fleet sizes mirroring test_bench_engine_throughput.py.
SMALL_FLEET = 4
LARGE_FLEET = 80

#: Input rate of the steady-state-heavy macro-stepping case: the large
#: fleet is heavily over-provisioned at this rate, so the fluid state
#: reaches its fixed point quickly and stays there (jump ratio ≈ 59/60,
#: capped by the 60 s network-budget refresh).
STEADY_RATE = 5.0

#: Decision-latency rig shape: a "10's of alternates" scaled dataflow.
DECISION_STAGES = 4
DECISION_ALTERNATES = 3
DECISION_RATE = 20.0
#: Fraction of the ideal capacity the rig provisions — inside the
#: (Ω̂ − ε, Ω̂ + ε + margin) dead zone so the resource stage predicts but
#: neither scales out nor in, which is the steady-state per-interval cost.
DECISION_PROVISION = 0.72


def _decision_snapshots(
    strategy: str = "global",
) -> tuple[RuntimeAdaptation, list[Snapshot]]:
    """A provisioned cluster plus under/steady/over interval snapshots."""
    df = scaled_dataflow(stages=DECISION_STAGES, alternates=DECISION_ALTERNATES)
    catalog = aws_2013_catalog()
    cfg = AdaptationConfig(strategy=strategy, omega_min=0.7, epsilon=0.05)
    adaptation = RuntimeAdaptation(df, catalog, cfg)

    selection = df.default_selection()
    input_rates = {n: DECISION_RATE for n in df.inputs}
    ideal = df.ideal_rates(selection, input_rates)
    largest = adaptation.catalog[-1]

    cluster = ClusterView()
    vm = cluster.new_vm(largest)
    for name in df.pe_names:
        units = (
            DECISION_PROVISION
            * ideal[name][0]
            * df.active_alternate(selection, name).cost
        )
        cores = max(1, math.ceil(units / largest.core_speed))
        while cores > 0:
            if vm.free_cores == 0:
                vm = cluster.new_vm(largest)
            take = min(cores, vm.free_cores)
            vm.allocate(name, take)
            cores -= take

    arrival_rates = {n: ideal[n][0] for n in df.pe_names}
    backlogs = {n: 0.0 for n in df.pe_names}
    snapshots = [
        Snapshot(
            time=600.0,
            selection=selection,
            cluster=cluster,
            input_rates=input_rates,
            arrival_rates=arrival_rates,
            omega_last=omega_last,
            omega_average=0.72,
            backlogs=backlogs,
            cumulative_cost=10.0,
        )
        # Cycle the under / steady / over alternate-selection directions
        # the way a wavy workload does interval to interval.
        for omega_last in (0.60, 0.70, 0.80)
    ]
    return adaptation, snapshots


def _decision_ns(n_decisions: int, strategy: str = "global") -> float:
    """Mean wall-clock nanoseconds per RuntimeAdaptation.adapt() call."""
    adaptation, snapshots = _decision_snapshots(strategy)
    # Warm-up: one pass over every (snapshot, stage-cadence) combination.
    for k in range(1, len(snapshots) * 2 + 1):
        adaptation.adapt(snapshots[(k - 1) % len(snapshots)], k)
    t0 = time.perf_counter()
    for k in range(1, n_decisions + 1):
        adaptation.adapt(snapshots[(k - 1) % len(snapshots)], k)
    return (time.perf_counter() - t0) / n_decisions * 1e9


#: Repetitions for the kernel microbenchmark: the loop is short enough
#: that scheduler noise dominates single runs, so the recorded figure is
#: the best of several (the machine-capability reading).
KERNEL_REPS = 7


def _kernel_events_per_s(n_events: int, reps: int = KERNEL_REPS) -> float:
    def once() -> float:
        env = Environment()

        def chain():
            for _ in range(n_events):
                yield env.timeout(1.0)

        env.process(chain())
        t0 = time.perf_counter()
        env.run()
        return n_events / (time.perf_counter() - t0)

    return max(once() for _ in range(reps))


def _fluid_rig(rate: float, n_vms: int, macrostep: bool):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    df = fig1_dataflow()
    pes = list(df.pe_names)
    for i in range(n_vms):
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate(pes[i % len(pes)], 4)
    ex = FluidExecutor(
        env, df, provider, {"E1": ConstantRate(rate)},
        selection=df.default_selection(), macrostep=macrostep,
    )
    ex.sync()
    ex.start()
    return env, ex


def _fluid_ticks_per_s(
    rate: float, n_vms: int, horizon: float, macrostep: bool = False
) -> tuple[float, float]:
    """(effective grid ticks per wall second, macro jump ratio).

    With ``macrostep=False`` this measures the raw per-tick stepping
    cost (the historical metric); with ``True`` it measures how fast the
    macro-stepping engine covers the same grid on a steady-state-heavy
    scenario — the ledgers are bit-identical either way.
    """
    env, ex = _fluid_rig(rate, n_vms, macrostep)
    t0 = time.perf_counter()
    env.run(until=horizon)
    elapsed = time.perf_counter() - t0
    stats = ex.roll_interval()
    assert stats.external_in["E1"] > 0, "engine processed no traffic"
    return horizon / elapsed, ex.macro_jump_ratio


def run_engine_bench(
    quick: bool = False, output: Optional[os.PathLike] = None, write: bool = True
) -> dict:
    """Measure and (optionally) record engine throughput metrics."""
    n_events = 10_000 if quick else 100_000
    horizon = 300.0 if quick else 3600.0
    n_decisions = 100 if quick else 1000
    # Historical per-tick metrics are measured with macro-stepping off so
    # the trajectory keeps comparing like with like; the steady-state
    # case measures the macro-stepping engine on the same large fleet.
    small, _ = _fluid_ticks_per_s(5.0, SMALL_FLEET, horizon)
    large, _ = _fluid_ticks_per_s(50.0, LARGE_FLEET, horizon)
    steady, jump_ratio = _fluid_ticks_per_s(
        STEADY_RATE, LARGE_FLEET, horizon, macrostep=True
    )
    metrics = {
        "kernel_events_per_s": _kernel_events_per_s(n_events),
        "fluid_small_ticks_per_s": small,
        "fluid_large_ticks_per_s": large,
        "fluid_steady_ticks_per_s": steady,
        "macro_jump_ratio": jump_ratio,
        "decision_ns": _decision_ns(n_decisions),
    }
    meta = {
        "quick": quick,
        "host_cpus": os.cpu_count() or 1,
        "small_fleet": SMALL_FLEET,
        "large_fleet": LARGE_FLEET,
        "steady_rate": STEADY_RATE,
        "kernel_reps": KERNEL_REPS,
        "horizon_s": horizon,
        "decision_iters": n_decisions,
        "decision_strategy": "global",
        "decision_stages": DECISION_STAGES,
        "decision_alternates": DECISION_ALTERNATES,
    }
    if write:
        path = output or bench_common.bench_path("engine")
        bench_common.append_entry(path, "engine", metrics, meta)
    return {"metrics": metrics, "meta": meta}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short horizons (smoke test)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure only; do not append to BENCH_engine.json")
    parser.add_argument("--output", default=None,
                        help="override the BENCH json path")
    args = parser.parse_args(argv)
    result = run_engine_bench(
        quick=args.quick, output=args.output, write=not args.no_write
    )
    for key, value in result["metrics"].items():
        print(f"{key:>28}: {value:12.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
