"""E5 / Figure 6: local vs global adaptation under infrastructure variability.

Constant input rates with trace-replayed CPU/network variability.
Expected shape: both runtime heuristics hold the Ω̂ constraint despite
the infrastructure churn (the static strategies of Fig. 4 could not).
"""

from __future__ import annotations

from repro.experiments import EPSILON, OMEGA_MIN, figure6


def test_bench_fig6_adaptation_infra(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure6(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig6_adaptation_infra", rendered)

    for row in result.sweep_rows:
        assert row.omega >= OMEGA_MIN - EPSILON - 0.02, (
            f"{row.policy}@{row.rate}: Ω̄={row.omega:.3f} misses the "
            f"constraint under infrastructure variability"
        )
    # Adaptation actually happened (the fleets were re-deployed).
    assert any(r.adaptations > 0 for r in result.sweep_rows)
