"""Ablation: robustness to monitoring measurement noise.

The heuristics see VM performance only through the monitoring framework;
real probes (short benchmarks) are noisy.  This ablation injects
multiplicative Gaussian noise into the probed CPU coefficients and
checks how far the global heuristic degrades.  Expected: graceful —
moderate probe noise (≤ 20%) must not break the throughput constraint,
at worst inflating cost slightly.
"""

from __future__ import annotations

from repro.engine import RunManager
from repro.experiments import MESSAGE_SIZE_MB, Scenario
from repro.util import format_table

NOISE_LEVELS = (0.0, 0.05, 0.10, 0.20, 0.40)


def _run(noise: float):
    scenario = Scenario(
        rate=10.0, rate_kind="wave", variability="both", seed=7,
        period=3600.0,
    )
    manager = RunManager(
        dataflow=scenario.dataflow,
        profiles=scenario.profiles(),
        policy=scenario.policy("global"),
        provider=scenario.provider(),
        spec=scenario.spec,
        tick=scenario.tick,
        message_size_mb=MESSAGE_SIZE_MB,
        monitor_noise_std=noise,
        monitor_seed=99,
    )
    return manager.run()


def _sweep():
    rows = []
    for noise in NOISE_LEVELS:
        result = _run(noise)
        o = result.outcome
        rows.append(
            [
                noise,
                o.mean_throughput,
                o.total_cost,
                o.theta,
                result.adaptations,
                o.constraint_met,
            ]
        )
    return rows


def test_bench_ablation_monitor_noise(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["probe noise σ", "Ω̄", "cost $", "Θ", "adaptations", "Ω̄≥Ω̂-ε"],
        rows,
        title="Ablation: monitoring noise robustness (global, 10 msg/s wave)",
    )
    print("\n" + rendered)
    record_figure("ablation_monitor_noise", rendered)

    by = {row[0]: row for row in rows}
    # Up to 20% probe noise the constraint still holds.
    for noise in (0.0, 0.05, 0.10, 0.20):
        assert by[noise][5], f"constraint broken at probe noise {noise}"
