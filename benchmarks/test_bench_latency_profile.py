"""Behavioural bench: end-to-end latency vs load factor.

The paper's introduction motivates adaptation with "the penalty of high
processing latencies during the high data rate period".  This bench
sweeps the offered load against a fixed deployment with the exact
per-message engine and reports latency percentiles.  Expected: the
classic queueing hockey stick — flat latency below saturation, explosive
growth past it.
"""

from __future__ import annotations

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import LatencyTracker, PerMessageExecutor
from repro.experiments import fig1_dataflow
from repro.sim import Environment
from repro.util import format_table
from repro.workloads import ConstantRate

#: Load factors relative to the deployment's saturation rate.
LOADS = (0.3, 0.6, 0.9, 1.2)
#: Deployment sized to sustain exactly this rate on the cheap alternates.
SATURATION_RATE = 4.0
HORIZON = 600.0


def _run_once(load: float):
    df = fig1_dataflow()
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    # Fixed fleet sized for SATURATION_RATE on the cheap alternates:
    # E1 .5c → 1 core, E2 1.6c → 4 cores, E3 2.4c → 5, E4 (rate 1.5×) .8c → 3.
    allocations = [
        {"E1": 1, "E2": 3},
        {"E2": 1, "E3": 3},
        {"E3": 2, "E4": 2},
        {"E4": 1},
    ]
    for alloc in allocations:
        vm = provider.provision("m1.xlarge", now=0.0)
        for pe, cores in alloc.items():
            vm.allocate(pe, cores)
    tracker = LatencyTracker()
    executor = PerMessageExecutor(
        env,
        df,
        provider,
        {"E1": ConstantRate(load * SATURATION_RATE)},
        selection=df.cheapest_selection(),
        latency_tracker=tracker,
    )
    executor.start()
    env.run(until=HORIZON)
    stats = executor.roll_interval()
    summary = tracker.summary()
    return [
        load,
        stats.omega(df.outputs),
        summary.p50,
        summary.p95,
        summary.max,
    ]


def _sweep():
    return [_run_once(load) for load in LOADS]


def test_bench_latency_profile(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["load", "Ω", "p50 s", "p95 s", "max s"],
        rows,
        title="End-to-end latency vs load factor (per-message engine)",
    )
    print("\n" + rendered)
    record_figure("latency_profile", rendered)

    p50s = {row[0]: row[2] for row in rows}
    # Below saturation latency stays flat (within 3× of the lightest load).
    assert p50s[0.6] < 3 * p50s[0.3]
    # Past saturation it explodes.
    assert p50s[1.2] > 10 * p50s[0.3]
