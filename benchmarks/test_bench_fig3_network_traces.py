"""E2 / Figure 3: network latency/bandwidth variability characterization.

Regenerates the VM-pair latency and bandwidth series of the paper's
Fig. 3.  Expected shape: latency spikes far above the base value;
bandwidth drifting and dipping below the rated 100 Mbps.
"""

from __future__ import annotations

from repro.experiments import figure3


def test_bench_fig3_network_traces(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure3(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig3_network_traces", rendered)

    for row in result.rows:
        _pair, lat_mean, lat_max, lat_cv, bw_mean, bw_min, _bw_cv = row
        assert lat_max > 3 * lat_mean, "latency must spike"
        assert lat_cv > 0.2, "latency must be heavy-tailed"
        assert bw_min < bw_mean <= 115.0, "bandwidth must dip below rated"
