"""Bench driver: sweep-grid throughput → ``BENCH_sweep.json``.

Times the fig8-style (policy × rate) grid — the shape behind every cost
figure — serially and with the process-parallel harness, verifies the
parallel rows are bit-identical to the serial ones, and appends cells/s
plus the measured speedup to the repo-root ``BENCH_sweep.json``.  The
serial/parallel sections run with the result cache disabled (reused rows
would fake the parallel speedup); a cache section then measures the
cache itself — a cold sweep into a fresh cache directory versus the warm
re-run — and records the warm speedup plus hit/miss counts in the entry
meta, asserting warm rows stay bit-identical to cold rows.  A final
section runs the same grid through the structure-of-arrays batch engine
(cache off, single process), asserts its rows equal the serial rows
bitwise, and records ``cells_per_s_batch`` / ``batch_speedup``.

Note: on a single-core host the parallel section degrades to the serial
loop (``parallel.sweep`` refuses to fork a pool that would time-slice
one CPU), so ``speedup`` ≈ 1 there; the batch section is unaffected.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--quick] [--jobs N]
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import tempfile
import time
from typing import Iterator, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scenario, resolve_jobs
from repro.experiments import batch as batch_mod
from repro.experiments import cache as result_cache
from repro.experiments import parallel as parallel_mod
from repro.experiments import runner
from repro.util import perf

import bench_common

FIG8_POLICIES = ("global", "global-nodyn", "local", "local-nodyn")
SEED = 7


def _grid(quick: bool) -> tuple[list[Scenario], list[str]]:
    if quick:
        rates, period = (2.0,), 600.0
        policies = ["static-local", "local"]
    else:
        # Wide enough (32 cells) for the batch engine's fixed per-tick
        # cost to amortize; rates stay moderate so no one cell's fleet
        # width inflates the whole stacked state.
        rates, period = (2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0), 1800.0
        policies = list(FIG8_POLICIES)
    scenarios = [
        Scenario(
            rate=r, rate_kind="wave", variability="both", seed=SEED,
            period=period,
        )
        for r in rates
    ]
    return scenarios, policies


@contextlib.contextmanager
def _cache_env(enabled: bool, directory: Optional[str] = None) -> Iterator[None]:
    """Pin the result-cache state for a measured section, then restore.

    Sets both the module flag and the environment variables so parallel
    sweep workers (fork or spawn) observe the same state.
    """
    saved_env = {
        key: os.environ.get(key) for key in ("REPRO_CACHE", "REPRO_CACHE_DIR")
    }
    was_enabled = result_cache.enabled()
    os.environ["REPRO_CACHE"] = "1" if enabled else "0"
    if directory is not None:
        os.environ["REPRO_CACHE_DIR"] = directory
    (result_cache.enable if enabled else result_cache.disable)()
    try:
        yield
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        (result_cache.enable if was_enabled else result_cache.disable)()


def _cache_counts() -> tuple[int, int]:
    counters = perf.snapshot()["counters"]
    return (
        int(counters.get("cache.hits", 0)),
        int(counters.get("cache.misses", 0)),
    )


def run_sweep_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    output: Optional[os.PathLike] = None,
    write: bool = True,
) -> dict:
    """Measure serial vs parallel sweep throughput and (optionally) record."""
    scenarios, policies = _grid(quick)
    n_cells = len(scenarios) * len(policies)
    jobs = jobs if jobs is not None else max(2, min(4, os.cpu_count() or 1))

    # Serial vs parallel with the cache OFF: the parallel run must redo
    # the work, not fetch the serial run's rows.
    with _cache_env(enabled=False):
        t0 = time.perf_counter()
        serial_rows = runner.sweep(scenarios, policies, jobs=1)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel_rows = parallel_mod.sweep(scenarios, policies, jobs=jobs)
        parallel_s = time.perf_counter() - t0

    identical = parallel_rows == serial_rows
    assert identical, "parallel sweep diverged from serial rows"

    # Cache section: cold sweep into a fresh directory, then the warm
    # re-run of the identical grid (this is the `figures` re-run shape).
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        with _cache_env(enabled=True, directory=tmp), perf.collecting():
            hits0, misses0 = _cache_counts()
            t0 = time.perf_counter()
            cold_rows = runner.sweep(scenarios, policies, jobs=1)
            cache_cold_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm_rows = runner.sweep(scenarios, policies, jobs=1)
            cache_warm_s = time.perf_counter() - t0
            hits1, misses1 = _cache_counts()

    cache_identical = warm_rows == cold_rows == serial_rows
    assert cache_identical, "cached rows diverged from fresh rows"
    cache_warm_speedup = cache_cold_s / max(cache_warm_s, 1e-9)

    # Batch section: the same cold grid through the structure-of-arrays
    # engine (cache off so every cell is computed), single process.
    batch_was = batch_mod.enabled()
    with _cache_env(enabled=False):
        batch_mod.enable()
        try:
            t0 = time.perf_counter()
            batch_rows = runner.sweep(scenarios, policies, jobs=1)
            batch_s = time.perf_counter() - t0
        finally:
            (batch_mod.enable if batch_was else batch_mod.disable)()
    batch_identical = batch_rows == serial_rows
    assert batch_identical, "batch sweep diverged from serial rows"
    batch_speedup = serial_s / max(batch_s, 1e-9)

    metrics = {
        "cells": float(n_cells),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cells_per_s_serial": n_cells / serial_s,
        "cells_per_s_parallel": n_cells / parallel_s,
        "speedup": serial_s / parallel_s,
        "cache_cold_s": cache_cold_s,
        "cache_warm_s": cache_warm_s,
        "cache_warm_speedup": cache_warm_speedup,
        "batch_s": batch_s,
        "cells_per_s_batch": n_cells / batch_s,
        "batch_speedup": batch_speedup,
    }
    meta = {
        "quick": quick,
        "jobs": jobs,
        "seed": SEED,
        "host_cpus": os.cpu_count() or 1,
        "policies": list(policies),
        "rates": [s.rate for s in scenarios],
        "rows_identical": identical,
        "cache_rows_identical": cache_identical,
        "batch_rows_identical": batch_identical,
        "cache_warm_speedup": cache_warm_speedup,
        "cache_hits": hits1 - hits0,
        "cache_misses": misses1 - misses0,
    }
    if write:
        path = output or bench_common.bench_path("sweep")
        bench_common.append_entry(path, "sweep", metrics, meta)
    return {"metrics": metrics, "meta": meta}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid (smoke test)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: min(4, CPUs), "
                             "at least 2)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure only; do not append to BENCH_sweep.json")
    parser.add_argument("--output", default=None,
                        help="override the BENCH json path")
    args = parser.parse_args(argv)
    result = run_sweep_bench(
        quick=args.quick, jobs=args.jobs, output=args.output,
        write=not args.no_write,
    )
    for key, value in result["metrics"].items():
        print(f"{key:>22}: {value:10.3f}")
    cpus = result["meta"]["host_cpus"]
    note = (
        " — single core: parallel section ran serially"
        if cpus <= 1 < result["meta"]["jobs"] else ""
    )
    print(f"{'jobs':>22}: {result['meta']['jobs']:10d} "
          f"(host cpus {cpus}, "
          f"resolve_jobs default {resolve_jobs(None)}){note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
