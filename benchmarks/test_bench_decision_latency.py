"""Microbenchmark: decision latency of heuristics vs brute force.

The paper argues that "fast heuristics are better suited than slow
optimal solutions that may in any case become stale" for continuous
adaptation.  This benchmark measures wall-clock planning latency of the
local/global deployment heuristics against the brute-force search at the
same rate, and the runtime adaptation step.  Expected: heuristics plan in
milliseconds; brute force is orders of magnitude slower.
"""

from __future__ import annotations

import time

from repro.cloud import aws_2013_catalog
from repro.core import (
    BruteForceConfig,
    BruteForceDeployment,
    DeploymentConfig,
    InitialDeployment,
)
from repro.experiments import fig1_dataflow

RATE = 5.0


def test_bench_local_deployment_latency(benchmark):
    df = fig1_dataflow()
    dep = InitialDeployment(
        df, aws_2013_catalog(), DeploymentConfig(strategy="local")
    )
    plan = benchmark(lambda: dep.plan({"E1": RATE}))
    assert plan.cluster.vms


def test_bench_global_deployment_latency(benchmark):
    df = fig1_dataflow()
    dep = InitialDeployment(
        df, aws_2013_catalog(), DeploymentConfig(strategy="global")
    )
    plan = benchmark(lambda: dep.plan({"E1": RATE}))
    assert plan.cluster.vms


def test_bench_bruteforce_latency(benchmark):
    df = fig1_dataflow()
    dep = BruteForceDeployment(
        df, aws_2013_catalog(), BruteForceConfig(omega_min=0.7)
    )
    plan = benchmark.pedantic(
        lambda: dep.plan({"E1": RATE}), rounds=3, iterations=1
    )
    assert plan.cluster.vms


def test_heuristics_orders_of_magnitude_faster():
    """Direct latency-ratio check backing the paper's §7 argument."""
    df = fig1_dataflow()
    catalog = aws_2013_catalog()

    t0 = time.perf_counter()
    InitialDeployment(df, catalog, DeploymentConfig(strategy="global")).plan(
        {"E1": RATE}
    )
    heuristic = time.perf_counter() - t0

    t0 = time.perf_counter()
    BruteForceDeployment(df, catalog, BruteForceConfig(omega_min=0.7)).plan(
        {"E1": RATE}
    )
    brute = time.perf_counter() - t0

    assert brute > 5 * heuristic, (
        f"brute force ({brute * 1e3:.1f} ms) should dwarf the heuristic "
        f"({heuristic * 1e3:.1f} ms)"
    )
