"""Validator for the ``BENCH_*.json`` perf-trajectory files.

Checks schema shape and the append-only invariant (timestamps must be
monotonically non-decreasing) so a bad merge or a hand-edit can't
silently corrupt the perf history future PRs regress against.

Usage::

    python benchmarks/check_bench_json.py [paths...]

With no paths, validates every ``BENCH_*.json`` at the repository root
(succeeding vacuously when none exist yet).  Exits non-zero on the first
invalid file.
"""

from __future__ import annotations

import datetime as _dt
import json
import math
import pathlib
import sys
from typing import Union

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXPECTED_SCHEMA = 1


class BenchValidationError(ValueError):
    """A BENCH file violates the schema or history invariants."""


def _fail(path, msg: str) -> None:
    raise BenchValidationError(f"{path}: {msg}")


def validate_file(path: Union[str, pathlib.Path]) -> dict:
    """Validate one BENCH file, returning the parsed payload."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        _fail(path, f"unreadable: {exc}")

    if not isinstance(data, dict):
        _fail(path, "top level must be an object")
    for key in ("benchmark", "schema", "history"):
        if key not in data:
            _fail(path, f"missing top-level key {key!r}")
    if not isinstance(data["benchmark"], str) or not data["benchmark"]:
        _fail(path, "'benchmark' must be a non-empty string")
    if data["schema"] != EXPECTED_SCHEMA:
        _fail(path, f"unknown schema version {data['schema']!r}")
    history = data["history"]
    if not isinstance(history, list) or not history:
        _fail(path, "'history' must be a non-empty list")

    last_ts = None
    for idx, entry in enumerate(history):
        where = f"history[{idx}]"
        if not isinstance(entry, dict):
            _fail(path, f"{where} must be an object")
        for key in ("timestamp", "meta", "metrics"):
            if key not in entry:
                _fail(path, f"{where} missing {key!r}")
        try:
            ts = _dt.datetime.fromisoformat(entry["timestamp"])
        except (TypeError, ValueError):
            _fail(path, f"{where} timestamp is not ISO-8601: "
                        f"{entry['timestamp']!r}")
        if last_ts is not None and ts < last_ts:
            _fail(path, f"{where} timestamp moves backwards "
                        f"({ts.isoformat()} < {last_ts.isoformat()}); "
                        "history must be append-only")
        last_ts = ts
        if not isinstance(entry["meta"], dict):
            _fail(path, f"{where} meta must be an object")
        metrics = entry["metrics"]
        if not isinstance(metrics, dict) or not metrics:
            _fail(path, f"{where} metrics must be a non-empty object")
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                _fail(path, f"{where} metric {name!r} is not a number: "
                            f"{value!r}")
            if not math.isfinite(value):
                _fail(path, f"{where} metric {name!r} is not finite: {value!r}")
        _validate_known_fields(path, where, metrics, entry["meta"])
    return data


def _validate_known_fields(path, where: str, metrics: dict, meta: dict) -> None:
    """Field-specific invariants beyond "finite number".

    ``decision_ns`` is a latency and must be positive; the result-cache
    bookkeeping (``cache_hits``/``cache_misses``/``cache_entries`` meta)
    must be non-negative integers and ``cache_warm_speedup`` a positive
    finite ratio.  The batch-engine throughput pair
    (``cells_per_s_batch``/``batch_speedup``) must be positive — a zero
    or negative value means the timer section never ran.  The
    multi-tenant kernel's throughput trio (``tenants_per_s``,
    ``tenants_per_s_serial``, ``tenants_speedup``) must likewise be
    positive, ``n_tenants`` meta a positive integer, and
    ``tenant_rows_identical`` meta strictly true — a false value means
    the shared kernel diverged from the isolated-run oracle and the
    recorded speedup is meaningless.  The serve load test's throughput
    and latency fields (``warm_rps``, ``warm_p50_ms``, ``cold_rps``)
    must be positive, and ``delta_hit_ratio`` a true ratio in [0, 1] —
    a ratio below 1 on a billing-only workload means delta requests
    fell back to re-simulation.
    """
    if "decision_ns" in metrics and metrics["decision_ns"] <= 0:
        _fail(path, f"{where} metric 'decision_ns' must be positive: "
                    f"{metrics['decision_ns']!r}")
    for name in ("cells_per_s_batch", "batch_speedup"):
        if name in metrics and metrics[name] <= 0:
            _fail(path, f"{where} metric {name!r} must be positive: "
                        f"{metrics[name]!r}")
    if "batch_rows_identical" in meta and meta["batch_rows_identical"] is not True:
        _fail(path, f"{where} meta 'batch_rows_identical' must be true: "
                    f"{meta['batch_rows_identical']!r}")
    for name in ("tenants_per_s", "tenants_per_s_serial", "tenants_speedup"):
        if name in metrics and metrics[name] <= 0:
            _fail(path, f"{where} metric {name!r} must be positive: "
                        f"{metrics[name]!r}")
    if "tenant_rows_identical" in meta and meta["tenant_rows_identical"] is not True:
        _fail(path, f"{where} meta 'tenant_rows_identical' must be true: "
                    f"{meta['tenant_rows_identical']!r}")
    if "n_tenants" in meta:
        value = meta["n_tenants"]
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            _fail(path, f"{where} meta 'n_tenants' must be a positive "
                        f"integer: {value!r}")
    if "macro_jump_ratio" in metrics:
        value = metrics["macro_jump_ratio"]
        if not 0.0 <= value <= 1.0:
            _fail(path, f"{where} metric 'macro_jump_ratio' must lie in "
                        f"[0, 1]: {value!r}")
    for name in (
        "warm_rps",
        "warm_p50_ms",
        "warm_p95_ms",
        "warm_p50_wall_ms",
        "cold_rps",
        "mixed_rps",
    ):
        if name in metrics and metrics[name] <= 0:
            _fail(path, f"{where} metric {name!r} must be positive: "
                        f"{metrics[name]!r}")
    if "delta_hit_ratio" in metrics:
        value = metrics["delta_hit_ratio"]
        if not 0.0 <= value <= 1.0:
            _fail(path, f"{where} metric 'delta_hit_ratio' must lie in "
                        f"[0, 1]: {value!r}")
    for name in ("cache_hits", "cache_misses", "cache_entries"):
        if name in meta:
            value = meta[name]
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 0
            ):
                _fail(path, f"{where} meta {name!r} must be a non-negative "
                            f"integer: {value!r}")
    if "cache_warm_speedup" in meta:
        value = meta["cache_warm_speedup"]
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or not math.isfinite(value)
            or value <= 0
        ):
            _fail(path, f"{where} meta 'cache_warm_speedup' must be a "
                        f"positive finite number: {value!r}")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    paths = [pathlib.Path(p) for p in argv] or sorted(
        REPO_ROOT.glob("BENCH_*.json")
    )
    if not paths:
        print("no BENCH_*.json files to validate")
        return 0
    for path in paths:
        try:
            data = validate_file(path)
        except BenchValidationError as exc:
            print(f"INVALID  {exc}", file=sys.stderr)
            return 1
        print(f"ok  {path} ({data['benchmark']}, "
              f"{len(data['history'])} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
