"""E6 / Figure 7: local vs global adaptation under data-rate variability.

Periodic-wave input rates on a stable infrastructure.  Expected shape:
both heuristics satisfy Ω̂ within ε across the rate range; on Θ the
global heuristic is competitive-to-better at high rates (≥ ~10 msg/s in
the paper) because it anticipates the downstream impact of its
re-deployments.
"""

from __future__ import annotations

import os

from repro.experiments import EPSILON, OMEGA_MIN, figure7


def test_bench_fig7_adaptation_data(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure7(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig7_adaptation_data", rendered)

    for row in result.sweep_rows:
        assert row.omega >= OMEGA_MIN - EPSILON - 0.02, (
            f"{row.policy}@{row.rate}: Ω̄={row.omega:.3f} misses the "
            f"constraint under data-rate variability"
        )

    # At the highest swept rate the global heuristic's Θ should be at
    # least competitive with local's (paper: global wins above ~10 msg/s).
    rates = sorted({r.rate for r in result.sweep_rows})
    by = {(r.rate, r.policy): r.theta for r in result.sweep_rows}
    top = rates[-1]
    assert by[(top, "global")] >= by[(top, "local")] - 0.05
