"""Tier-2 smoke tests for the recording bench drivers.

Marked ``bench_smoke`` (registered in pyproject.toml) so CI can run just

    pytest -m bench_smoke benchmarks/

to prove the drivers, the JSON schema, and the validator still agree —
one tiny cell per driver, written to a tmp path, never touching the
repo-root ``BENCH_*.json`` history.
"""

from __future__ import annotations

import json
import time

import pytest

import bench_common
import bench_engine
import bench_sweep
import check_bench_json

from repro.experiments import Scenario
from repro.experiments import cache as result_cache
from repro.experiments.runner import SweepRow
from repro.obs import collector as obs_collector

pytestmark = pytest.mark.bench_smoke

REPO_BENCH_ENGINE = check_bench_json.REPO_ROOT / "BENCH_engine.json"


def test_engine_driver_quick(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    result = bench_engine.run_engine_bench(quick=True, output=out)
    for name in (
        "kernel_events_per_s",
        "fluid_small_ticks_per_s",
        "fluid_large_ticks_per_s",
        "fluid_steady_ticks_per_s",
        "decision_ns",
    ):
        assert result["metrics"][name] > 0
    assert 0.0 <= result["metrics"]["macro_jump_ratio"] <= 1.0
    data = check_bench_json.validate_file(out)
    assert data["benchmark"] == "engine"
    assert len(data["history"]) == 1
    assert data["history"][0]["meta"]["quick"] is True


def test_sweep_driver_quick(tmp_path):
    out = tmp_path / "BENCH_sweep.json"
    result = bench_sweep.run_sweep_bench(quick=True, jobs=2, output=out)
    assert result["meta"]["rows_identical"] is True
    assert result["meta"]["cache_rows_identical"] is True
    assert result["meta"]["batch_rows_identical"] is True
    assert result["meta"]["cache_hits"] == 2
    assert result["meta"]["cache_misses"] == 2
    assert result["metrics"]["cells"] == 2.0
    assert result["metrics"]["cache_warm_speedup"] > 1.0
    assert result["metrics"]["cells_per_s_batch"] > 0
    data = check_bench_json.validate_file(out)
    assert data["benchmark"] == "sweep"
    assert data["history"][0]["metrics"]["speedup"] > 0


def test_decision_ns_beats_pre_pr_baseline():
    """ISSUE acceptance: adaptation decisions ≥ 1.3× faster than the
    pre-optimization value recorded in the repo-root history.

    The *first* history entry carrying ``decision_ns`` is the baseline
    measured before the decision fast paths landed; a live quick
    measurement must beat it by the required factor (the recorded
    improvement is ~2.4×, leaving ample noise margin).
    """
    data = check_bench_json.validate_file(REPO_BENCH_ENGINE)
    baseline = next(
        (
            e["metrics"]["decision_ns"]
            for e in data["history"]
            if "decision_ns" in e["metrics"]
        ),
        None,
    )
    assert baseline is not None, "no pre-PR decision_ns entry recorded"
    live = bench_engine._decision_ns(200)
    assert baseline / live >= 1.3, (
        f"decision_ns regressed: baseline {baseline:.0f} ns vs "
        f"live {live:.0f} ns ({baseline / live:.2f}x)"
    )


def test_disabled_cache_overhead_negligible(monkeypatch):
    """ISSUE acceptance: a disabled cache must cost a flag test on the
    sweep driver's per-cell path, not key hashing or file probing."""
    sentinel = object()
    monkeypatch.setattr(result_cache, "run_policy", lambda s, p: sentinel)
    monkeypatch.setattr(
        SweepRow,
        "from_result",
        classmethod(lambda cls, scenario, res: sentinel),
    )
    monkeypatch.setattr(result_cache, "_enabled", False)
    scenario = Scenario(rate=5.0)
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        result_cache.run_cell(scenario, "local")
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6, f"disabled run_cell costs {per_call * 1e9:.0f} ns"


def test_history_appends_and_stays_valid(tmp_path):
    out = tmp_path / "BENCH_x.json"
    bench_common.append_entry(out, "x", {"m": 1.0}, {"run": 1})
    bench_common.append_entry(out, "x", {"m": 2.0}, {"run": 2})
    data = check_bench_json.validate_file(out)
    assert [e["metrics"]["m"] for e in data["history"]] == [1.0, 2.0]


def test_validator_rejects_corruption(tmp_path):
    out = tmp_path / "BENCH_bad.json"
    bench_common.append_entry(out, "bad", {"m": 1.0})
    data = json.loads(out.read_text())
    data["history"][0]["metrics"]["m"] = "not-a-number"
    out.write_text(json.dumps(data))
    with pytest.raises(check_bench_json.BenchValidationError):
        check_bench_json.validate_file(out)


def test_validator_rejects_backwards_timestamps(tmp_path):
    out = tmp_path / "BENCH_ts.json"
    bench_common.append_entry(out, "ts", {"m": 1.0})
    bench_common.append_entry(out, "ts", {"m": 2.0})
    data = json.loads(out.read_text())
    data["history"].reverse()
    out.write_text(json.dumps(data))
    with pytest.raises(check_bench_json.BenchValidationError):
        check_bench_json.validate_file(out)


def test_validator_cli_on_tmp_file(tmp_path, capsys):
    out = tmp_path / "BENCH_cli.json"
    bench_common.append_entry(out, "cli", {"m": 1.0})
    assert check_bench_json.main([str(out)]) == 0
    assert "ok" in capsys.readouterr().out


def test_append_entry_is_atomic(tmp_path, monkeypatch):
    """A crash mid-rewrite must leave the previous history intact."""
    out = tmp_path / "BENCH_crash.json"
    bench_common.append_entry(out, "crash", {"m": 1.0})
    before = out.read_text()

    def exploding_replace(src, dst):
        raise OSError("simulated crash during replace")

    monkeypatch.setattr(bench_common.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        bench_common.append_entry(out, "crash", {"m": 2.0})
    monkeypatch.undo()
    assert out.read_text() == before
    assert not list(tmp_path.glob("*.tmp"))
    check_bench_json.validate_file(out)


def test_append_entry_leaves_no_temp_file(tmp_path):
    out = tmp_path / "BENCH_tmp.json"
    bench_common.append_entry(out, "tmp", {"m": 1.0})
    assert [p.name for p in tmp_path.iterdir()] == ["BENCH_tmp.json"]


def test_disabled_validate_overhead_negligible():
    """ISSUE acceptance: a disabled invariant checker must cost one
    module-global flag test per instrumented site — the exact guard the
    engine hot loop runs every tick."""
    from repro.validate import invariants

    invariants.disable()
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        if invariants.enabled():  # the call-site guard, always False here
            invariants.checker()
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 2e-6, f"disabled guard costs {per_call * 1e9:.0f} ns"


def test_validate_hooks_keep_large_fleet_ticks():
    """ISSUE acceptance: the checker hooks (disabled) regress the
    large-fleet fluid tick rate by < 1% against the recorded history.

    Best-of-3 on the live side squeezes scheduling noise out of the
    measurement; the recorded baseline is a single full-horizon sample.
    """
    from repro.validate import invariants

    data = check_bench_json.validate_file(REPO_BENCH_ENGINE)
    baseline = next(
        (
            e["metrics"]["fluid_large_ticks_per_s"]
            for e in reversed(data["history"])
            if "fluid_large_ticks_per_s" in e["metrics"]
        ),
        None,
    )
    assert baseline is not None, "no fluid_large_ticks_per_s recorded"
    invariants.disable()
    live = max(
        bench_engine._fluid_ticks_per_s(
            50.0, bench_engine.LARGE_FLEET, 300.0
        )[0]
        for _ in range(3)
    )
    assert live >= 0.99 * baseline, (
        f"large-fleet tick rate regressed: baseline {baseline:.0f}/s vs "
        f"live {live:.0f}/s ({live / baseline:.3f}x)"
    )


def test_macro_steady_state_speedup():
    """ISSUE acceptance: the macro-stepping engine covers a steady-state
    large-fleet grid ≥ 3× faster than per-tick stepping (the recorded
    full-horizon runs show ~9×; the short smoke horizon keeps margin)."""
    on, ratio = bench_engine._fluid_ticks_per_s(
        bench_engine.STEADY_RATE, bench_engine.LARGE_FLEET, 600.0,
        macrostep=True,
    )
    off, _ = bench_engine._fluid_ticks_per_s(
        bench_engine.STEADY_RATE, bench_engine.LARGE_FLEET, 600.0,
        macrostep=False,
    )
    assert ratio > 0.5, f"steady-state rig barely jumped: ratio {ratio:.3f}"
    assert on >= 3.0 * off, (
        f"macro-stepping speedup below 3x: {on:.0f}/s vs {off:.0f}/s "
        f"({on / off:.2f}x)"
    )


def test_macro_gate_overhead_negligible():
    """ISSUE acceptance: when jumps are impossible (or the feature is
    off) the macro machinery must cost < 2 µs per tick.

    A periodic-wave profile varies continuously, so the change cap
    disables every jump and the gate's cheap pre-checks run on every
    tick — that per-tick delta against a macro-off run of the identical
    scenario is the whole overhead anyone can observe.
    """
    import time as _time

    from repro.cloud import (
        CloudProvider,
        ConstantPerformance,
        aws_2013_catalog,
    )
    from repro.engine import FluidExecutor
    from repro.experiments import fig1_dataflow
    from repro.sim import Environment
    from repro.workloads import PeriodicWave

    def per_tick_s(macro: bool) -> float:
        best = float("inf")
        for _ in range(3):
            env = Environment()
            provider = CloudProvider(
                aws_2013_catalog(), performance=ConstantPerformance()
            )
            df = fig1_dataflow()
            pes = list(df.pe_names)
            for i in range(8):
                vm = provider.provision("m1.xlarge", now=0.0)
                vm.allocate(pes[i % len(pes)], 4)
            ex = FluidExecutor(
                env, df, provider, {"E1": PeriodicWave(5.0)},
                selection=df.default_selection(), macrostep=macro,
            )
            ex.sync()
            ex.start()
            t0 = _time.perf_counter()
            env.run(until=2000.0)
            best = min(best, (_time.perf_counter() - t0) / 2000.0)
        return best

    off = per_tick_s(False)
    on = per_tick_s(True)
    assert on - off < 2e-6, (
        f"macro gate overhead {max(0.0, on - off) * 1e6:.2f} µs/tick "
        f"(off {off * 1e6:.1f} µs, on {on * 1e6:.1f} µs)"
    )


def test_batch_speedup_floor_recorded():
    """ISSUE acceptance: the recorded cold-sweep batch throughput is
    ≥ 5× the serial baseline measured in the same entry, and the entry
    attests the batch rows were bit-identical to the serial rows."""
    data = check_bench_json.validate_file(
        check_bench_json.REPO_ROOT / "BENCH_sweep.json"
    )
    entry = next(
        (
            e
            for e in reversed(data["history"])
            if "batch_speedup" in e["metrics"]
        ),
        None,
    )
    assert entry is not None, "no batch_speedup entry recorded"
    assert entry["meta"]["batch_rows_identical"] is True
    speedup = entry["metrics"]["batch_speedup"]
    assert speedup >= 5.0, f"recorded batch speedup below 5x: {speedup:.2f}"


def test_batch_disabled_overhead_negligible():
    """ISSUE acceptance: with REPRO_BATCH off the sweep pays one
    module-global flag test per call — the exact guard runner.sweep
    runs before falling through to the serial/parallel path."""
    from repro.experiments import batch as batch_mod

    batch_mod.disable()
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        if batch_mod.enabled():  # the runner.sweep guard, always False here
            batch_mod.sweep([], [])
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 2e-6, f"disabled batch guard costs {per_call * 1e9:.0f} ns"


def test_disabled_tracing_overhead_negligible():
    """ISSUE acceptance: disabled tracing must cost a flag test, not work.

    Two properties: a disabled ``emit`` records nothing, and its per-call
    cost stays far below a microsecond — negligible next to the ~100 µs a
    single fluid-engine tick costs.
    """
    obs_collector.disable()
    obs_collector.reset()
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs_collector.emit("interval_stats", t=0.0, omega=1.0)
    per_call = (time.perf_counter() - t0) / n
    assert obs_collector.events() == ()
    assert per_call < 2e-6, f"disabled emit costs {per_call * 1e9:.0f} ns"
