"""E7 / Figure 8: dollar cost over the period, by policy and rate.

Runs the four adaptive policies (global, global-nodyn, local,
local-nodyn) under combined data + infrastructure variability and
reports the dollar spend.  Expected shape: enabling application dynamism
never costs more; the no-dynamism twins pay more at every rate.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8


@pytest.fixture(scope="module")
def fig8_result(full_scale):
    return figure8(fast=not full_scale)


def test_bench_fig8_cost_comparison(benchmark, fig8_result, record_figure):
    result = benchmark.pedantic(lambda: fig8_result, rounds=1, iterations=1)
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig8_cost_comparison", rendered)

    by = {(r.rate, r.policy): r for r in result.sweep_rows}
    rates = sorted({r.rate for r in result.sweep_rows})
    for rate in rates:
        assert by[(rate, "global")].cost <= by[(rate, "global-nodyn")].cost + 1e-9
        assert by[(rate, "local")].cost <= by[(rate, "local-nodyn")].cost + 1e-9
    # Everyone still meets the throughput constraint while saving.
    assert all(r.constraint_met for r in result.sweep_rows)
    # Cost grows with rate for every policy.
    for policy in ("global", "local"):
        costs = [by[(r, policy)].cost for r in rates]
        assert costs[-1] > costs[0]
