"""Ablation: cadence of the alternate-selection stage.

The paper runs the alternate stage every ``n`` intervals "to keep a
balance between application value ... and the resource cost".  This
ablation sweeps the cadence on a wave workload and reports Ω̄, Γ̄, cost
and Θ.  Expected: very slow cadences forgo value/cost corrections, very
fast ones churn; the default (2) should sit near the best Θ.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import AdaptationConfig
from repro.engine import RunManager
from repro.experiments import MESSAGE_SIZE_MB, Scenario
from repro.util import format_table

PERIODS = (1, 2, 4, 8)


def _run(period_n: int):
    scenario = Scenario(
        rate=10.0, rate_kind="wave", variability="both", seed=7,
        period=3600.0,
    )
    policy = scenario.policy("global")
    assert policy.adapter is not None
    policy.adapter.config = replace(
        policy.adapter.config, alternate_period=period_n
    )
    manager = RunManager(
        dataflow=scenario.dataflow,
        profiles=scenario.profiles(),
        policy=policy,
        provider=scenario.provider(),
        spec=scenario.spec,
        tick=scenario.tick,
        message_size_mb=MESSAGE_SIZE_MB,
    )
    return manager.run()


def _sweep():
    rows = []
    for n in PERIODS:
        result = _run(n)
        o = result.outcome
        rows.append(
            [n, o.mean_throughput, o.mean_value, o.total_cost, o.theta,
             o.constraint_met]
        )
    return rows


def test_bench_ablation_alternate_period(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["alt period", "Ω̄", "Γ̄", "cost $", "Θ", "Ω̄≥Ω̂-ε"],
        rows,
        title="Ablation: alternate-selection cadence (global, 10 msg/s wave)",
    )
    print("\n" + rendered)
    record_figure("ablation_alternate_period", rendered)

    # All cadences must keep the constraint; the stage cadence trades
    # value against cost, not feasibility.
    assert all(row[5] for row in rows)
