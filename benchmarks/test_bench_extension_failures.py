"""Extension bench (paper §9 future work): fault tolerance under VM crashes.

Injects memoryless VM failures (MTBF sweep) and compares the adaptive
local/global heuristics against a static deployment.  Expected: the
adaptive heuristics re-provision around crashes and keep Ω̄ near the
constraint (paying for replacement VMs); the static deployment loses
capacity permanently and collapses.
"""

from __future__ import annotations

from repro.experiments import Scenario, run_policy
from repro.util import format_table

MTBFS = (None, 1.0, 0.25)  # no failures, hourly, every 15 minutes


def _sweep():
    rows = []
    for mtbf in MTBFS:
        for policy in ("static-local", "local", "global"):
            result = run_policy(
                Scenario(
                    rate=10.0,
                    variability="none",
                    period=3600.0,
                    seed=3,
                    mtbf_hours=mtbf,
                ),
                policy,
            )
            o = result.outcome
            rows.append(
                [
                    "∞" if mtbf is None else f"{mtbf:g}h",
                    policy,
                    len(result.crashes),
                    o.mean_throughput,
                    o.total_cost,
                    o.constraint_met,
                ]
            )
    return rows


def test_bench_extension_failures(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["MTBF", "policy", "crashes", "Ω̄", "cost $", "Ω̄≥Ω̂-ε"],
        rows,
        title="Extension: fault tolerance under VM crashes (10 msg/s, 1 h)",
    )
    print("\n" + rendered)
    record_figure("extension_failures", rendered)

    by = {(row[0], row[1]): row for row in rows}
    # Without failures everyone is fine.
    assert all(by[("∞", p)][5] for p in ("static-local", "local", "global"))
    # Under aggressive failures the adaptive policies keep the constraint…
    assert by[("0.25h", "local")][5]
    assert by[("0.25h", "global")][5]
    # …while the static deployment does not.
    assert not by[("0.25h", "static-local")][5]
    # Resilience costs money: adaptive spend rises with failure rate.
    assert by[("0.25h", "local")][4] > by[("∞", "local")][4]
