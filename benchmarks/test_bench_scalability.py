"""E9 / §8.1 scalability claim: "10's of alternates and 100's of VMs".

The paper scales its small abstract dataflow "to 10's of alternates and
100's of VMs ... that demonstrates scalability of the proposed
heuristics".  This bench grows the diamond-chain dataflow (stages ×
alternates) and the input rate, and reports the planning latency of the
global deployment heuristic, the fleet size, and a managed-run wall
time.  Expected: planning latency stays in the tens-of-milliseconds
regime even at hundreds of cores — fast enough for 60 s decision
intervals.
"""

from __future__ import annotations

import time

from repro.cloud import aws_2013_catalog
from repro.core import DeploymentConfig, InitialDeployment
from repro.experiments import Scenario, run_policy, scaled_dataflow
from repro.util import format_table

#: (stages, alternates per PE, input rate).
GRID = (
    (1, 2, 5.0),
    (2, 3, 10.0),
    (4, 3, 20.0),
    (4, 5, 50.0),
)


def _plan_row(stages: int, alternates: int, rate: float):
    df = scaled_dataflow(stages=stages, alternates=alternates)
    dep = InitialDeployment(
        df, aws_2013_catalog(), DeploymentConfig(strategy="global")
    )
    t0 = time.perf_counter()
    plan = dep.plan({"in": rate})
    latency_ms = (time.perf_counter() - t0) * 1e3
    total_alts = sum(len(p) for p in df.pes)
    cores = sum(vm.used_cores for vm in plan.cluster.vms)
    return [
        f"{stages}×{alternates}",
        len(df),
        total_alts,
        rate,
        len(plan.cluster.vms),
        cores,
        latency_ms,
    ]


def _sweep():
    return [_plan_row(*cfg) for cfg in GRID]


def test_bench_scalability_planning(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["graph", "PEs", "alternates", "rate", "VMs", "cores", "plan ms"],
        rows,
        title="Scalability: global deployment planning vs problem size",
    )
    print("\n" + rendered)
    record_figure("scalability_planning", rendered)

    biggest = rows[-1]
    assert biggest[2] >= 40, "largest case must reach 10's of alternates"
    assert biggest[5] >= 100, "largest case must reach 100's of cores"
    # Decisions stay far under the 60 s interval (the paper's argument
    # for heuristics over optimal solvers).
    assert all(row[6] < 5_000 for row in rows)


def test_bench_scalability_managed_run(benchmark):
    """A full managed run on the big graph still executes quickly."""

    def run():
        return run_policy(
            Scenario(
                rate=20.0,
                variability="both",
                seed=5,
                period=1800.0,
                dataflow=scaled_dataflow(stages=3, alternates=3),
            ),
            "global",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.outcome.constraint_met
