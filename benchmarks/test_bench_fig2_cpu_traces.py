"""E1 / Figure 2: VM CPU performance variability characterization.

Regenerates the per-VM CPU coefficient series the paper's Fig. 2 plots
(four days, multiple same-class VMs) and reports their statistics.
Expected shape: per-instance mean spread plus temporal relative
deviations commonly beyond ±10%.
"""

from __future__ import annotations

from repro.experiments import figure2


def test_bench_fig2_cpu_traces(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure2(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig2_cpu_traces", rendered)

    # Shape assertions mirroring the paper's claims.
    means = [row[1] for row in result.rows]
    cvs = [row[2] for row in result.rows]
    assert all(0.5 <= m <= 1.1 for m in means)
    assert all(cv > 0.01 for cv in cvs), "traces must vary over time"
    assert max(means) - min(means) > 0.005, "instances must differ"
    # Relative deviations regularly exceed several percent.
    assert any(row[6] > 0.05 for row in result.rows)
