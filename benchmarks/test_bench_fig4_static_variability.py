"""E3 / Figure 4: static deployments under data/infrastructure variability.

Runs the three static strategies (brute-force optimal, local, global) at
5 msg/s under the four variability modes.  Expected shape: everything
satisfies Ω̂ with no variability (brute force has the best Θ); once data
and/or infrastructure variability is enabled, static relative throughput
degrades — while the static fleets' cost (and hence Θ) stays flat —
motivating continuous re-deployment.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure4


def test_bench_fig4_static_variability(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure4(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig4_static_variability", rendered)

    by = {(r.variability, r.policy): r for r in result.sweep_rows}
    policies = sorted({r.policy for r in result.sweep_rows})

    # No variability: every static policy meets the constraint.
    for policy in policies:
        assert by[("none", policy)].constraint_met

    # Brute force has the best Θ among constraint-satisfying policies.
    assert by[("none", "static-bruteforce")].theta >= max(
        by[("none", p)].theta for p in policies
    ) - 1e-9

    # Variability degrades Ω̄ for the heuristic static deployments.  (The
    # brute force is sized *exactly* at Ω̂, so under data-only variability
    # the per-interval cap at Ω = 1 in rate troughs can slightly raise its
    # mean — a Jensen effect documented in EXPERIMENTS.md; infrastructure
    # variability still degrades it.)
    for policy in ("static-local", "static-global"):
        assert by[("both", policy)].omega < by[("none", policy)].omega
        assert by[("data", policy)].omega < by[("none", policy)].omega
        assert by[("infra", policy)].omega < by[("none", policy)].omega
    if "static-bruteforce" in policies:
        assert (
            by[("infra", "static-bruteforce")].omega
            < by[("none", "static-bruteforce")].omega
        )

    # Θ is cost-flat for the heuristic static fleets (never re-deployed).
    for policy in ("static-local", "static-global"):
        assert by[("both", policy)].cost == pytest.approx(
            by[("none", policy)].cost, rel=0.01
        )
