"""Shared helpers for the ``BENCH_*.json`` perf-trajectory files.

Each tracked benchmark appends one entry per run to a JSON file at the
repository root (``BENCH_engine.json``, ``BENCH_sweep.json``).  The files
are the machine-readable perf history future PRs regress against; their
schema is validated by ``benchmarks/check_bench_json.py``:

.. code-block:: json

    {
      "benchmark": "engine",
      "schema": 1,
      "history": [
        {
          "timestamp": "2026-08-05T12:00:00+00:00",
          "meta": {"host_cpus": 8, "quick": false, "seed": 7},
          "metrics": {"fluid_large_ticks_per_s": 11000.0}
        }
      ]
    }

``history`` is append-only and timestamp-ordered, so plotting any metric
over the file gives the perf trajectory of the repo.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import pathlib
from typing import Mapping, Optional, Union

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1

PathLike = Union[str, os.PathLike]


def bench_path(name: str) -> pathlib.Path:
    """Canonical location of one benchmark's history file."""
    return REPO_ROOT / f"BENCH_{name}.json"


def load_history(path: PathLike) -> dict:
    """Load a BENCH file, returning an empty skeleton if it is absent."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"benchmark": "", "schema": SCHEMA_VERSION, "history": []}
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def append_entry(
    path: PathLike,
    benchmark: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping] = None,
) -> dict:
    """Append one run's metrics to a BENCH file and rewrite it.

    Returns the entry that was appended.  ``metrics`` values must be
    finite numbers; ``meta`` carries run context (seed, worker count,
    quick/full mode) needed to reproduce the measurement.
    """
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or value != value:
            raise ValueError(f"metric {key!r} is not a finite number: {value!r}")
    data = load_history(path)
    data["benchmark"] = benchmark
    data["schema"] = SCHEMA_VERSION
    entry = {
        "timestamp": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "meta": dict(meta or {}),
        "metrics": {k: float(v) for k, v in metrics.items()},
    }
    data["history"].append(entry)
    _atomic_write_text(
        pathlib.Path(path),
        json.dumps(data, indent=2, sort_keys=True) + "\n",
    )
    return entry


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write via a same-directory temp file + ``os.replace``.

    The BENCH files are an append-only record validated by
    ``check_bench_json.py``; a crash mid-write must leave either the old
    or the new history, never a truncated one.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
