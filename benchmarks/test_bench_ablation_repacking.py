"""Ablation: the global strategy's repacking passes.

DESIGN.md calls out the repacking passes (``RepackPE`` + ``RepackFreeVMs``)
as the global deployment's cost lever.  This ablation deploys the Fig. 1
dataflow across rates with repacking enabled and disabled and reports the
hourly fleet price.  Expected: repacking never increases cost and shaves
the under-filled largest-class tail at most rates.
"""

from __future__ import annotations

from repro.cloud import aws_2013_catalog
from repro.core import DeploymentConfig, InitialDeployment
from repro.experiments import fig1_dataflow
from repro.util import format_table

RATES = (2.0, 5.0, 10.0, 20.0, 35.0, 50.0)


def _sweep():
    df = fig1_dataflow()
    catalog = aws_2013_catalog()
    rows = []
    for rate in RATES:
        prices = {}
        for repack in (True, False):
            plan = InitialDeployment(
                df,
                catalog,
                DeploymentConfig(strategy="global", omega_min=0.7, repack=repack),
            ).plan({"E1": rate})
            prices[repack] = plan.cluster.total_hourly_price()
        saving = (prices[False] - prices[True]) / prices[False] * 100
        rows.append([rate, prices[True], prices[False], saving])
    return rows


def test_bench_ablation_repacking(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["rate", "repacked $/h", "unrepacked $/h", "saving %"],
        rows,
        title="Ablation: global repacking passes",
    )
    print("\n" + rendered)
    record_figure("ablation_repacking", rendered)

    for rate, packed, unpacked, _saving in rows:
        assert packed <= unpacked + 1e-9, f"repacking raised cost at {rate}"
    assert any(row[3] > 0 for row in rows), "repacking never helped"
