"""Ablation: decision-interval length.

The paper divides the optimization period into equal intervals and makes
runtime decisions at each boundary.  This ablation sweeps the interval
length under combined variability.  Expected: short intervals track the
wave closely (high Ω̄, more adaptations); long intervals react late and
risk the constraint.
"""

from __future__ import annotations

from repro.experiments import Scenario, run_policy
from repro.util import format_table

INTERVALS = (30.0, 60.0, 180.0, 360.0)


def _sweep():
    rows = []
    for interval in INTERVALS:
        result = run_policy(
            Scenario(
                rate=10.0,
                rate_kind="wave",
                variability="both",
                seed=7,
                period=3600.0,
                interval=interval,
            ),
            "global",
        )
        o = result.outcome
        rows.append(
            [
                interval,
                o.mean_throughput,
                o.total_cost,
                o.theta,
                result.adaptations,
                o.constraint_met,
            ]
        )
    return rows


def test_bench_ablation_interval(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["interval s", "Ω̄", "cost $", "Θ", "adaptations", "Ω̄≥Ω̂-ε"],
        rows,
        title="Ablation: decision interval (global, 10 msg/s wave, both var.)",
    )
    print("\n" + rendered)
    record_figure("ablation_interval", rendered)

    # Finer intervals adapt at least as often as coarser ones.
    assert rows[0][4] >= rows[-1][4]
    # The default 60 s interval must hold the constraint.
    assert rows[1][5]
