"""Microbenchmarks: simulation substrate throughput.

Measures the raw speed of the building blocks the reproduction rests on:
the DES kernel's event throughput and the fluid executor's tick rate at
two fleet sizes.  These guard against performance regressions that would
make the full-scale figure sweeps impractical.
"""

from __future__ import annotations

from repro.cloud import CloudProvider, ConstantPerformance, aws_2013_catalog
from repro.engine import FluidExecutor
from repro.experiments import fig1_dataflow
from repro.sim import Environment
from repro.workloads import ConstantRate


def test_bench_kernel_event_throughput(benchmark):
    """Schedule-and-fire cycles of bare timeout events."""

    def run_10k_events():
        env = Environment()

        def chain():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(chain())
        env.run()
        return env.now

    result = benchmark(run_10k_events)
    assert result == 10_000.0


def test_bench_kernel_process_switching(benchmark):
    """Round-robin switching between many concurrent processes."""

    def run():
        env = Environment()

        def worker():
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(worker())
        env.run()
        return env.now

    assert benchmark(run) == 100.0


def _fluid_rig(rate: float, n_vms: int):
    env = Environment()
    provider = CloudProvider(
        aws_2013_catalog(), performance=ConstantPerformance()
    )
    df = fig1_dataflow()
    pes = list(df.pe_names)
    for i in range(n_vms):
        vm = provider.provision("m1.xlarge", now=0.0)
        vm.allocate(pes[i % len(pes)], 4)
    ex = FluidExecutor(
        env, df, provider, {"E1": ConstantRate(rate)},
        selection=df.default_selection(),
    )
    ex.sync()
    ex.start()
    return env, ex


def test_bench_fluid_ticks_small_fleet(benchmark):
    """One simulated hour (3600 ticks) on a 4-VM fleet."""
    env, ex = _fluid_rig(rate=5.0, n_vms=4)

    def hour():
        env.run(until=env.now + 3600.0)
        return ex.roll_interval()

    stats = benchmark.pedantic(hour, rounds=3, iterations=1)
    assert stats.external_in["E1"] > 0


def test_bench_fluid_ticks_large_fleet(benchmark):
    """One simulated hour on an 80-VM fleet (50 msg/s scale)."""
    env, ex = _fluid_rig(rate=50.0, n_vms=80)

    def hour():
        env.run(until=env.now + 3600.0)
        return ex.roll_interval()

    stats = benchmark.pedantic(hour, rounds=3, iterations=1)
    assert stats.external_in["E1"] > 0
