"""E4 / Figure 5: static deployments vs data rate (no variability).

Sweeps the static local/global deployments over increasing constant
rates.  Expected shape: relative throughput declines as the rate grows
(the integer-core headroom that protects low-rate deployments shrinks),
reinforcing the need for runtime adaptation.
"""

from __future__ import annotations

from repro.experiments import figure5


def test_bench_fig5_static_rates(benchmark, full_scale, record_figure):
    result = benchmark.pedantic(
        lambda: figure5(fast=not full_scale), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig5_static_rates", rendered)

    rates = sorted({r.rate for r in result.sweep_rows})
    by = {(r.rate, r.policy): r.omega for r in result.sweep_rows}
    for policy in ("static-local", "static-global"):
        lowest, highest = by[(rates[0], policy)], by[(rates[-1], policy)]
        assert highest <= lowest + 0.02, (
            f"{policy}: Ω̄ should not improve with rate "
            f"({lowest:.3f} @ {rates[0]} → {highest:.3f} @ {rates[-1]})"
        )
        # Everything still ≥ the floor the deployment was sized for.
        assert highest >= 0.6
