"""E8 / Figure 9: cost benefit of application dynamism.

Derives the relative savings from the Fig. 8 sweep.  Expected shape
(the paper's headline): the global heuristic with dynamism spends on
average ~15% less than global without dynamism, and substantially less
(up to ~70% at the paper's scale) than the local heuristic without
dynamism.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8, figure9


@pytest.fixture(scope="module")
def fig8_result(full_scale):
    return figure8(fast=not full_scale)


def test_bench_fig9_dynamism_benefit(benchmark, fig8_result, record_figure):
    result = benchmark.pedantic(
        lambda: figure9(fig8=fig8_result), rounds=1, iterations=1
    )
    rendered = result.render()
    print("\n" + rendered)
    record_figure("fig9_dynamism_benefit", rendered)

    mean_row = result.rows[-1]
    assert mean_row[0] == "mean"
    global_vs_nodyn, local_vs_nodyn, global_vs_local_nodyn = (
        mean_row[1],
        mean_row[2],
        mean_row[3],
    )
    # Dynamism saves money on average for both strategies.
    assert global_vs_nodyn > 0.0
    assert local_vs_nodyn >= 0.0
    # Paper's headline: global's dynamism saving is in the ~15% regime.
    assert 5.0 <= global_vs_nodyn <= 40.0
    # And global-with-dynamism beats local-without-dynamism.
    assert global_vs_local_nodyn > 0.0
