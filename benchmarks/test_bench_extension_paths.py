"""Extension bench (paper §9 future work): dynamic path selection.

Evaluates deployment-time selection over whole-graph variants: a full
enrichment path (value 1.0, expensive) versus a shortcut path (value
0.8, skips the enrichment stage).  Expected shape: the full path wins Θ
at low rates where its extra cost is small in absolute dollars; as the
rate grows the enrichment stage's cost scales linearly and the selector
crosses over to the shortcut.
"""

from __future__ import annotations

from repro.cloud import aws_2013_catalog
from repro.core import ObjectiveSpec
from repro.core.paths import DynamicPathSet, PathSelector, PathVariant
from repro.dataflow import Alternate, DynamicDataflow, ProcessingElement
from repro.util import format_table

RATES = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0)


def _paths() -> DynamicPathSet:
    def classify():
        return ProcessingElement(
            "classify",
            [
                Alternate("deep", value=1.0, cost=2.0),
                Alternate("fast", value=0.8, cost=1.0),
            ],
        )

    full = DynamicDataflow(
        [
            ProcessingElement("ingest", [Alternate("i", value=1.0, cost=0.5)]),
            ProcessingElement("enrich", [Alternate("e", value=1.0, cost=3.0)]),
            classify(),
            ProcessingElement("sink", [Alternate("s", value=1.0, cost=0.3)]),
        ],
        [("ingest", "enrich"), ("enrich", "classify"), ("classify", "sink")],
    )
    shortcut = DynamicDataflow(
        [
            ProcessingElement("ingest", [Alternate("i", value=1.0, cost=0.5)]),
            classify(),
            ProcessingElement("sink", [Alternate("s", value=1.0, cost=0.3)]),
        ],
        [("ingest", "classify"), ("classify", "sink")],
    )
    return DynamicPathSet(
        [
            PathVariant("full", full, value=1.0),
            PathVariant("shortcut", shortcut, value=0.8),
        ]
    )


def _sweep():
    paths = _paths()
    catalog = aws_2013_catalog()
    rows = []
    for rate in RATES:
        spec = ObjectiveSpec(omega_min=0.7, sigma=0.02, period=6 * 3600.0)
        selector = PathSelector(paths, catalog, spec)
        ranked = selector.rank({"ingest": rate})
        best = ranked[0]
        rows.append(
            [
                rate,
                best.variant.name,
                best.predicted_value,
                best.predicted_cost,
                best.predicted_theta,
                ranked[1].predicted_theta,
            ]
        )
    return rows


def test_bench_extension_paths(benchmark, record_figure):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = format_table(
        ["rate", "chosen path", "γ·Γ", "cost $", "Θ best", "Θ runner-up"],
        rows,
        title="Extension: dynamic path selection vs input rate",
    )
    print("\n" + rendered)
    record_figure("extension_paths", rendered)

    chosen = [row[1] for row in rows]
    assert chosen[0] == "full", "value should win at the lowest rate"
    assert chosen[-1] == "shortcut", "cost should win at the highest rate"
    # Single crossover: once the shortcut wins, it keeps winning.
    flipped = False
    for name in chosen:
        if name == "shortcut":
            flipped = True
        elif flipped:
            raise AssertionError(f"non-monotone path choice: {chosen}")
