#!/usr/bin/env python3
"""Future-work demo: surviving VM crashes with runtime adaptation.

The paper's conclusion proposes using dynamic tasks "to support enhanced
fault tolerance and recovery mechanisms".  This example injects
memoryless VM crashes (mean time between failures: 20 minutes) into a
one-hour run and contrasts three policies:

* ``static-local`` — never looks back: every crash permanently removes
  capacity, and throughput collapses;
* ``local`` / ``global`` — the monitor sees the missing capacity at the
  next interval and the heuristics re-provision, at the price of the
  replacement VMs' billed hours.

Run:
    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import Scenario, run_policy


def main() -> None:
    def scenario() -> Scenario:
        return Scenario(
            rate=10.0,
            variability="none",   # isolate the failure effect
            period=3600.0,
            seed=3,
            mtbf_hours=1.0 / 3.0,  # a crash every ~20 minutes per VM
        )

    print("injecting VM crashes (per-VM MTBF ≈ 20 min) into a 1 h run\n")
    results = {}
    for policy in ("static-local", "local", "global"):
        results[policy] = run_policy(scenario(), policy)

    print(f"{'policy':>14}  {'Ω̄':>6}  {'ok':>3}  {'cost $':>7}  "
          f"{'crashes':>7}  {'msgs lost':>9}")
    for policy, result in results.items():
        o = result.outcome
        lost = sum(c.lost_messages for c in result.crashes)
        print(
            f"{policy:>14}  {o.mean_throughput:6.3f}  "
            f"{'✓' if o.constraint_met else '✗':>3}  {o.total_cost:7.2f}  "
            f"{len(result.crashes):7d}  {lost:9.0f}"
        )

    print()
    adaptive = results["global"]
    if adaptive.crashes:
        first = adaptive.crashes[0]
        print(
            f"first crash under 'global': {first.instance_id} at "
            f"t={first.t / 60:.1f} min "
            f"({first.lost_messages:.0f} queued messages destroyed) — the "
            f"next interval's snapshot showed the missing capacity and the "
            f"heuristic re-provisioned."
        )
    static = results["static-local"].outcome
    print(
        f"the static deployment ends the hour at Ω̄={static.mean_throughput:.2f} "
        f"with no way back; recovery is exactly what the runtime loop buys."
    )


if __name__ == "__main__":
    main()
