#!/usr/bin/env python3
"""Exploring the infrastructure variability substrate (Figs. 2–3).

Generates a synthetic FutureGrid-like trace library, prints the Fig. 2/3
style characterization, and demonstrates the replay API the execution
engine consumes — including the toggles the evaluation uses to isolate
CPU from network variability.

Run:
    python examples/trace_explorer.py
"""

from __future__ import annotations

from repro import TraceLibrary, TraceReplayPerformance
from repro.cloud import CPUTraceConfig, trace_statistics
from repro.util import format_table


def main() -> None:
    library = TraceLibrary(
        seed=7,
        n_cpu_series=6,
        n_network_series=4,
        cpu=CPUTraceConfig(duration_s=2 * 86400.0),  # two days
    )

    # -- Fig. 2 style: per-VM CPU coefficient statistics ------------------
    rows = []
    for i in range(library.n_cpu_series):
        s = trace_statistics(library.cpu_series[i])
        rows.append([f"vm-{i}", s["mean"], s["cv"], s["min"],
                     s["rel_dev_p95"]])
    print(format_table(
        ["vm", "mean", "CV", "min", "relDev p95"],
        rows,
        title="CPU coefficient series (2 days @ 60 s)",
    ))
    print()

    # -- Fig. 3 style: pairwise network statistics ------------------------
    rows = []
    for i in range(library.n_network_series):
        lat = trace_statistics(library.latency_series[i] * 1e3)
        bw = trace_statistics(library.bandwidth_series[i])
        rows.append([f"pair-{i}", lat["mean"], lat["max"], bw["mean"],
                     bw["min"]])
    print(format_table(
        ["pair", "lat mean ms", "lat max ms", "bw mean Mbps", "bw min Mbps"],
        rows,
        title="network series",
    ))
    print()

    # -- replay API --------------------------------------------------------
    perf = TraceReplayPerformance(library)
    print("replaying VM 'worker-1' across one day:")
    for hour in (0, 6, 12, 18, 24):
        c = perf.cpu_coefficient("worker-1", hour * 3600.0)
        bw = perf.bandwidth_mbps("worker-1", "worker-2", hour * 3600.0)
        print(f"  t={hour:2d}h  cpu×{c:.3f}  link {bw:6.1f} Mbps")

    cpu_only = TraceReplayPerformance(library, network_enabled=False)
    print()
    print("with network variability disabled (Fig. 4's 'infra CPU only'):")
    print(f"  link bandwidth pinned at "
          f"{cpu_only.bandwidth_mbps('a', 'b', 0.0):.0f} Mbps")


if __name__ == "__main__":
    main()
