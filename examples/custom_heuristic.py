#!/usr/bin/env python3
"""Extending the library: plugging in a custom scheduling policy.

The run manager accepts any object with the
:class:`repro.core.policies.Policy` interface, so new heuristics can be
compared against the paper's without touching the engine.  This example
implements a deliberately naive **overprovisioner** — it sizes the
initial fleet for twice the estimated load and never adapts — and races
it against the paper's global heuristic.

Run:
    python examples/custom_heuristic.py
"""

from __future__ import annotations

from typing import Mapping

from repro import Scenario
from repro.core import (
    DeploymentConfig,
    DeploymentPlan,
    InitialDeployment,
    Policy,
)
from repro.engine import RunManager
from repro.experiments.scenarios import MESSAGE_SIZE_MB


class Overprovisioner:
    """Deploys for 2× the estimated rate with max-value alternates.

    A caricature of the "statically over-provision for peaks" strategy
    the paper's introduction criticizes: robust to bursts, expensive to
    run, blind to infrastructure variability.
    """

    def __init__(self, dataflow, catalog, headroom: float = 2.0) -> None:
        if headroom < 1.0:
            raise ValueError("headroom must be ≥ 1")
        self._inner = InitialDeployment(
            dataflow,
            catalog,
            DeploymentConfig(strategy="local", omega_min=1.0, dynamism=False),
        )
        self.headroom = headroom

    def plan(self, input_rates: Mapping[str, float]) -> DeploymentPlan:
        inflated = {k: v * self.headroom for k, v in input_rates.items()}
        return self._inner.plan(inflated)


def run(scenario: Scenario, policy: Policy):
    return RunManager(
        dataflow=scenario.dataflow,
        profiles=scenario.profiles(),
        policy=policy,
        provider=scenario.provider(),
        spec=scenario.spec,
        tick=scenario.tick,
        message_size_mb=MESSAGE_SIZE_MB,
    ).run()


def main() -> None:
    scenario = Scenario(
        rate=8.0,
        rate_kind="wave",
        variability="both",
        seed=5,
        period=3600.0,
    )

    contenders = [
        scenario.policy("global"),
        Policy(
            name="overprovision-2x",
            deployer=Overprovisioner(scenario.dataflow, scenario.catalog),
            adapter=None,
        ),
    ]

    print(f"{'policy':>18}  {'Θ':>8}  {'Γ̄':>6}  {'Ω̄':>6}  {'cost $':>7}")
    results = {}
    for policy in contenders:
        result = run(scenario, policy)
        results[policy.name] = result
        o = result.outcome
        print(
            f"{policy.name:>18}  {o.theta:+8.4f}  {o.mean_value:6.3f}  "
            f"{o.mean_throughput:6.3f}  {o.total_cost:7.2f}"
        )

    over = results["overprovision-2x"].outcome
    glob = results["global"].outcome
    print()
    if over.constraint_met:
        extra = over.total_cost / max(glob.total_cost, 1e-9)
        print(
            f"The overprovisioner holds the SLO too — but pays "
            f"{extra:.1f}× the global heuristic's bill to do it."
        )
    else:
        print("Even 2× static headroom failed the SLO under variability.")


if __name__ == "__main__":
    main()
