#!/usr/bin/env python3
"""Domain example: continuous video-feed analytics with alternate models.

A streaming pipeline in the spirit of the paper's motivating
applications: frames arrive from a camera network, are decoded, passed
through an object detector that exists in three fidelities (a deep
model, a pruned model, and a motion-gated fast path), and the detections
are aggregated and published.  Daytime traffic follows a periodic wave.

The example shows how the runtime heuristics exploit the detector's
alternates: during traffic peaks the system downgrades the detector to
hold the throughput SLO, and upgrades again in the troughs.

Run:
    python examples/video_analytics.py
"""

from __future__ import annotations

from repro import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    Scenario,
    run_policy,
)


def build_pipeline() -> DynamicDataflow:
    """decode → detect (3 alternates) → track → publish, with a side
    branch sampling thumbnails for archival."""
    decode = ProcessingElement(
        "decode", [Alternate("decode", value=1.0, cost=0.4)]
    )
    detect = ProcessingElement(
        "detect",
        [
            # value ~ mAP of the detector; cost in core-seconds/frame.
            Alternate("deep", value=1.0, cost=3.5),
            Alternate("pruned", value=0.9, cost=2.2),
            Alternate("motion-gated", value=0.72, cost=1.1),
        ],
    )
    track = ProcessingElement(
        "track", [Alternate("track", value=1.0, cost=0.8)]
    )
    thumbs = ProcessingElement(
        # Samples 1 frame in 10 for the archive.
        "thumbs", [Alternate("thumbs", value=1.0, cost=0.2, selectivity=0.1)]
    )
    publish = ProcessingElement(
        "publish", [Alternate("publish", value=1.0, cost=0.3)]
    )
    return DynamicDataflow(
        [decode, detect, track, thumbs, publish],
        [
            ("decode", "detect"),
            ("decode", "thumbs"),
            ("detect", "track"),
            ("track", "publish"),
            ("thumbs", "publish"),
        ],
    )


def main() -> None:
    pipeline = build_pipeline()
    scenario = Scenario(
        rate=12.0,            # mean frame batches per second
        rate_kind="wave",     # daytime traffic wave
        variability="both",
        seed=2024,
        period=2 * 3600.0,    # two simulated hours
        dataflow=pipeline,
    )

    print(f"pipeline: {pipeline}")
    print(f"detector alternates: {[a.name for a in pipeline['detect']]}")
    print()

    results = {}
    for policy in ("global", "global-nodyn"):
        results[policy] = run_policy(scenario, policy)

    for policy, result in results.items():
        o = result.outcome
        print(
            f"{policy:>13}:  Θ={o.theta:+.4f}  Γ̄={o.mean_value:.3f}  "
            f"Ω̄={o.mean_throughput:.3f}  cost=${o.total_cost:.2f}  "
            f"final detector={result.final_selection['detect']}"
        )

    dyn, nodyn = results["global"], results["global-nodyn"]
    if nodyn.total_cost > 0:
        saving = (nodyn.total_cost - dyn.total_cost) / nodyn.total_cost * 100
        print()
        print(
            f"Letting the scheduler switch detector fidelities saved "
            f"{saving:.1f}% of the cloud bill while keeping "
            f"Ω̄={dyn.outcome.mean_throughput:.2f} "
            f"(SLO: ≥ {scenario.spec.omega_min})."
        )


if __name__ == "__main__":
    main()
