#!/usr/bin/env python3
"""Domain example: smart-grid demand forecasting over smart-meter streams.

The authors' group built continuous dataflows for the USC campus
micro-grid: smart meters emit readings whose rate drifts with building
occupancy (a random walk), the pipeline cleans and aggregates them, and
a forecasting stage exists in two fidelities (a full regression-tree
ensemble vs. an exponential-smoothing fallback).

This example demonstrates interval-level introspection: it prints a
timeline of Ω(t), the active forecaster, and the fleet burn rate, showing
how the local heuristic rides the load walk.

Run:
    python examples/smartgrid_forecasting.py
"""

from __future__ import annotations

from repro import (
    Alternate,
    DynamicDataflow,
    ProcessingElement,
    Scenario,
    run_policy,
)


def build_pipeline() -> DynamicDataflow:
    ingest = ProcessingElement(
        "ingest", [Alternate("ingest", value=1.0, cost=0.3)]
    )
    clean = ProcessingElement(
        "clean", [Alternate("clean", value=1.0, cost=0.6)]
    )
    aggregate = ProcessingElement(
        # 15-minute building-level roll-ups: 100 readings → 1 aggregate.
        "aggregate", [Alternate("aggregate", value=1.0, cost=0.5, selectivity=0.2)]
    )
    forecast = ProcessingElement(
        "forecast",
        [
            Alternate("ensemble", value=1.0, cost=4.0),
            Alternate("smoothing", value=0.8, cost=1.5),
        ],
    )
    alert = ProcessingElement(
        "alert", [Alternate("alert", value=1.0, cost=0.2)]
    )
    return DynamicDataflow(
        [ingest, clean, aggregate, forecast, alert],
        [
            ("ingest", "clean"),
            ("clean", "aggregate"),
            ("aggregate", "forecast"),
            ("forecast", "alert"),
        ],
    )


def main() -> None:
    scenario = Scenario(
        rate=20.0,           # mean smart-meter readings per second
        rate_kind="walk",    # occupancy-driven random walk
        variability="infra",
        seed=7,
        period=3600.0,
        interval=120.0,      # decide every 2 simulated minutes
        dataflow=build_pipeline(),
    )

    result = run_policy(scenario, "local")

    print("interval timeline (local heuristic, 20 msg/s random walk):")
    print(f"{'t (min)':>8}  {'Ω(t)':>6}  {'Γ(t)':>6}  {'μ[t] $':>7}")
    for m in result.timeline:
        print(
            f"{m.t / 60:8.0f}  {m.throughput:6.3f}  {m.value:6.3f}  "
            f"{m.cumulative_cost:7.2f}"
        )

    o = result.outcome
    print()
    print(f"summary: {result.summary()}")
    print(f"final forecaster: {result.final_selection['forecast']}")
    print(f"VMs provisioned over the hour: {result.vms_provisioned} "
          f"(peak {result.vms_peak})")
    assert o.constraint_met, "the local heuristic should hold Ω̂ here"


if __name__ == "__main__":
    main()
