#!/usr/bin/env python3
"""Quickstart: deploy and adapt a dynamic dataflow on a simulated cloud.

Builds the paper's Fig. 1 dataflow, runs the *global* heuristic for one
simulated hour at 5 msg/s under combined data-rate and infrastructure
variability, and prints the §6 metrics (Ω̄, Γ̄, μ, Θ).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario, run_policy


def main() -> None:
    scenario = Scenario(
        rate=5.0,             # mean input rate (msg/s)
        rate_kind="wave",     # sinusoidal rate, ±50% around the mean
        variability="both",   # data-rate AND infrastructure variability
        seed=42,
        period=3600.0,        # one simulated hour
    )

    print("Scenario:")
    print(f"  dataflow     : {scenario.dataflow}")
    print(f"  input rate   : {scenario.rate:g} msg/s ({scenario.rate_kind})")
    print(f"  variability  : {scenario.variability}")
    print(f"  constraint   : Ω̄ ≥ {scenario.spec.omega_min} (ε={scenario.spec.epsilon})")
    print(f"  σ            : {scenario.spec.sigma:.5f} value/dollar")
    print()

    results = {}
    for policy in ("static-local", "local", "global"):
        result = run_policy(scenario, policy)
        results[policy] = result
        o = result.outcome
        flag = "meets Ω̂" if o.constraint_met else "VIOLATES Ω̂"
        print(
            f"{policy:>14}:  Θ={o.theta:+.4f}  Γ̄={o.mean_value:.3f}  "
            f"Ω̄={o.mean_throughput:.3f} ({flag})  cost=${o.total_cost:.2f}  "
            f"peak VMs={result.vms_peak}  adaptations={result.adaptations}"
        )

    print()
    static, glob = results["static-local"].outcome, results["global"].outcome
    if not static.constraint_met and glob.constraint_met:
        print("The static deployment missed the throughput constraint under")
        print("variability; the adaptive heuristics held it by re-deploying.")
    else:
        print("On this short, mild run even the static deployment scraped by;")
        print("longer horizons and stronger variability (see EXPERIMENTS.md,")
        print("Fig. 4) are where static deployments fail the constraint while")
        print("the adaptive heuristics keep holding it.")


if __name__ == "__main__":
    main()
